package grids

import (
	"testing"

	"mvg/internal/ml"
)

func TestGridSizes(t *testing.T) {
	if n := len(XGB(Full, 1)); n != 3*10*2 {
		t.Errorf("full XGB grid has %d candidates, want 60 (paper: 3 lrs × 10 estimator counts × 2 depths)", n)
	}
	if n := len(XGB(Quick, 1)); n != 8 {
		t.Errorf("quick XGB grid has %d candidates, want 8", n)
	}
	if n := len(RF(Full, 1)); n != 12 {
		t.Errorf("full RF grid has %d", n)
	}
	if n := len(SVM(Full, 1)); n != 20 {
		t.Errorf("full SVM grid has %d", n)
	}
}

func TestCandidatesAreDistinctAndNamed(t *testing.T) {
	for _, grid := range [][]ml.Classifier{XGB(Quick, 1), RF(Quick, 1), SVM(Quick, 1)} {
		names := map[string]bool{}
		for _, c := range grid {
			n, ok := c.(ml.Named)
			if !ok {
				t.Fatalf("candidate %T is not Named", c)
			}
			if names[n.Name()] {
				t.Errorf("duplicate candidate %q", n.Name())
			}
			names[n.Name()] = true
		}
	}
}

func TestCandidatesAreUntrained(t *testing.T) {
	for _, c := range XGB(Quick, 1) {
		if _, err := c.PredictProba([][]float64{{1}}); err == nil {
			t.Fatal("grid candidate is already trained")
		}
	}
}
