// Package stats implements the statistical tests the paper's evaluation
// relies on: the Wilcoxon signed-rank test (pairwise accuracy comparisons,
// Tables 2–3), the Friedman test and the Nemenyi post-hoc critical
// difference (the CD diagrams of Figures 6–7), plus the supporting
// distribution functions (normal CDF, regularized incomplete gamma).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrTooFewSamples is returned when a test has no usable observations.
var ErrTooFewSamples = errors.New("stats: too few samples")

// NormalCDF returns Φ(z) for the standard normal distribution.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// rankAbs assigns average ranks (1-based) to values by ascending magnitude.
func rankAbs(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(values[idx[a]]) < math.Abs(values[idx[b]])
	})
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && math.Abs(values[idx[j+1]]) == math.Abs(values[idx[i]]) {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// WilcoxonResult reports a signed-rank test outcome.
type WilcoxonResult struct {
	// N is the number of non-zero differences used.
	N int
	// WPlus and WMinus are the positive/negative rank sums; W = min.
	WPlus, WMinus, W float64
	// Z is the normal-approximation statistic.
	Z float64
	// P is the two-sided p-value.
	P float64
	// AWins / BWins count datasets where a (resp. b) is strictly smaller
	// (the paper reports error rates, so smaller = more accurate).
	AWins, BWins int
}

// Wilcoxon runs the two-sided Wilcoxon signed-rank test on paired samples,
// dropping zero differences and using the normal approximation with tie
// correction — the procedure behind every "Wilcoxon test p-value" row in
// the paper's tables.
func Wilcoxon(a, b []float64) (WilcoxonResult, error) {
	if len(a) != len(b) {
		return WilcoxonResult{}, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(a), len(b))
	}
	var diffs []float64
	res := WilcoxonResult{}
	for i := range a {
		d := a[i] - b[i]
		if d != 0 {
			diffs = append(diffs, d)
		}
		if a[i] < b[i] {
			res.AWins++
		} else if b[i] < a[i] {
			res.BWins++
		}
	}
	n := len(diffs)
	if n < 3 {
		return res, fmt.Errorf("%w: %d non-zero differences", ErrTooFewSamples, n)
	}
	res.N = n
	ranks := rankAbs(diffs)
	for i, d := range diffs {
		if d > 0 {
			res.WPlus += ranks[i]
		} else {
			res.WMinus += ranks[i]
		}
	}
	res.W = math.Min(res.WPlus, res.WMinus)

	fn := float64(n)
	mu := fn * (fn + 1) / 4
	variance := fn * (fn + 1) * (2*fn + 1) / 24
	// Tie correction: subtract Σ(t³−t)/48 per tie group of size t.
	sorted := make([]float64, n)
	for i, d := range diffs {
		sorted[i] = math.Abs(d)
	}
	sort.Float64s(sorted)
	for i := 0; i < n; {
		j := i
		for j+1 < n && sorted[j+1] == sorted[i] {
			j++
		}
		t := float64(j - i + 1)
		if t > 1 {
			variance -= (t*t*t - t) / 48
		}
		i = j + 1
	}
	if variance <= 0 {
		return res, fmt.Errorf("%w: all differences tied", ErrTooFewSamples)
	}
	res.Z = (res.W - mu) / math.Sqrt(variance)
	p := 2 * NormalCDF(res.Z)
	if p > 1 {
		p = 1
	}
	res.P = p
	return res, nil
}

// AverageRanks ranks algorithms per dataset (rows of scores) and returns
// each algorithm's mean rank. Lower scores receive better (lower) ranks —
// appropriate for error rates. Ties share average ranks.
func AverageRanks(scores [][]float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, ErrTooFewSamples
	}
	k := len(scores[0])
	if k < 2 {
		return nil, fmt.Errorf("stats: need at least 2 algorithms")
	}
	sums := make([]float64, k)
	for _, row := range scores {
		if len(row) != k {
			return nil, fmt.Errorf("stats: ragged score matrix")
		}
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		for i := 0; i < k; {
			j := i
			for j+1 < k && row[idx[j+1]] == row[idx[i]] {
				j++
			}
			avg := float64(i+j)/2 + 1
			for t := i; t <= j; t++ {
				sums[idx[t]] += avg
			}
			i = j + 1
		}
	}
	n := float64(len(scores))
	for i := range sums {
		sums[i] /= n
	}
	return sums, nil
}

// FriedmanResult reports the Friedman omnibus test.
type FriedmanResult struct {
	// AvgRanks holds the mean rank per algorithm (lower = better).
	AvgRanks []float64
	// ChiSq is the Friedman χ² statistic with K-1 degrees of freedom.
	ChiSq float64
	// P is its p-value.
	P float64
	// N and K are the dataset and algorithm counts.
	N, K int
}

// Friedman runs the Friedman rank test over a score matrix with one row
// per dataset and one column per algorithm (lower scores = better).
func Friedman(scores [][]float64) (FriedmanResult, error) {
	ranks, err := AverageRanks(scores)
	if err != nil {
		return FriedmanResult{}, err
	}
	n := float64(len(scores))
	k := float64(len(ranks))
	if len(scores) < 2 {
		return FriedmanResult{}, fmt.Errorf("%w: need ≥2 datasets", ErrTooFewSamples)
	}
	sum := 0.0
	for _, r := range ranks {
		sum += r * r
	}
	chi := 12 * n / (k * (k + 1)) * (sum - k*(k+1)*(k+1)/4)
	p := ChiSquareSurvival(chi, int(k)-1)
	return FriedmanResult{AvgRanks: ranks, ChiSq: chi, P: p, N: len(scores), K: len(ranks)}, nil
}

// nemenyiQ05 and nemenyiQ10 hold the critical values q_α of the studentized
// range statistic divided by √2 for infinite degrees of freedom (Demšar
// 2006, Table 5), indexed by number of algorithms k starting at k=2.
var nemenyiQ05 = []float64{
	1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
	3.219, 3.268, 3.313, 3.354, 3.391, 3.426, 3.458, 3.489, 3.517, 3.544,
}

var nemenyiQ10 = []float64{
	1.645, 2.052, 2.291, 2.459, 2.589, 2.693, 2.780, 2.855, 2.920,
	2.978, 3.030, 3.077, 3.120, 3.159, 3.196, 3.230, 3.261, 3.291, 3.319,
}

// NemenyiCD returns the critical difference CD = q_α √(k(k+1)/(6N)) for k
// algorithms over N datasets at significance alpha (0.05 or 0.10). Two
// algorithms whose average ranks differ by at least CD are significantly
// different (Figures 6–7 of the paper).
func NemenyiCD(k, n int, alpha float64) (float64, error) {
	if k < 2 || k > 20 {
		return 0, fmt.Errorf("stats: Nemenyi table covers 2..20 algorithms, got %d", k)
	}
	if n < 2 {
		return 0, fmt.Errorf("%w: need ≥2 datasets", ErrTooFewSamples)
	}
	var q float64
	switch alpha {
	case 0.05:
		q = nemenyiQ05[k-2]
	case 0.10:
		q = nemenyiQ10[k-2]
	default:
		return 0, fmt.Errorf("stats: Nemenyi critical values tabulated for α=0.05 and α=0.10 only")
	}
	return q * math.Sqrt(float64(k)*float64(k+1)/(6*float64(n))), nil
}

// ChiSquareSurvival returns P(X ≥ x) for a χ² distribution with df degrees
// of freedom, via the regularized upper incomplete gamma function.
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	if df <= 0 {
		return math.NaN()
	}
	return regularizedGammaQ(float64(df)/2, x/2)
}

// regularizedGammaQ computes Q(a,x) = Γ(a,x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise
// (Numerical Recipes §6.2).
func regularizedGammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
