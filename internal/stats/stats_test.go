package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalCDF(t *testing.T) {
	cases := map[float64]float64{
		0:     0.5,
		1.96:  0.9750021,
		-1.96: 0.0249979,
		3:     0.9986501,
	}
	for z, want := range cases {
		if got := NormalCDF(z); math.Abs(got-want) > 1e-6 {
			t.Errorf("NormalCDF(%v) = %v, want %v", z, got, want)
		}
	}
}

func TestWilcoxonKnownExample(t *testing.T) {
	// Classic textbook example (Conover): differences with known W.
	a := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	b := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	res, err := Wilcoxon(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// One zero difference dropped → n = 9.
	if res.N != 9 {
		t.Errorf("N = %d, want 9", res.N)
	}
	if res.W != math.Min(res.WPlus, res.WMinus) {
		t.Error("W is not the min rank sum")
	}
	if res.WPlus+res.WMinus != 45 { // 9·10/2
		t.Errorf("rank sums total %v, want 45", res.WPlus+res.WMinus)
	}
	if res.P <= 0 || res.P > 1 {
		t.Errorf("p = %v", res.P)
	}
}

func TestWilcoxonDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 1.0 + 0.1*rng.NormFloat64() // strong shift
	}
	res, err := Wilcoxon(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Errorf("shifted pairs p = %v, want tiny", res.P)
	}
	if res.BWins != 0 && res.AWins < res.BWins {
		t.Errorf("a should win everywhere: %d vs %d", res.AWins, res.BWins)
	}
}

func TestWilcoxonNullIsUniformish(t *testing.T) {
	// Under H0 the p-value should frequently exceed 0.05.
	rng := rand.New(rand.NewSource(7))
	rejections := 0
	trials := 100
	for trial := 0; trial < trials; trial++ {
		n := 30
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := Wilcoxon(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	if rejections > 15 {
		t.Errorf("null rejected %d/%d times at α=0.05", rejections, trials)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := Wilcoxon([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Wilcoxon([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("all-zero differences should fail")
	}
}

func TestAverageRanks(t *testing.T) {
	scores := [][]float64{
		{0.1, 0.2, 0.3},
		{0.1, 0.3, 0.2},
		{0.3, 0.2, 0.1},
	}
	ranks, err := AverageRanks(scores)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{(1.0 + 1 + 3) / 3, (2.0 + 3 + 2) / 3, (3.0 + 2 + 1) / 3}
	for i := range want {
		if math.Abs(ranks[i]-want[i]) > 1e-12 {
			t.Errorf("rank[%d] = %v, want %v", i, ranks[i], want[i])
		}
	}
	// Ties share average rank.
	tied, err := AverageRanks([][]float64{{0.5, 0.5, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if tied[0] != 2.5 || tied[1] != 2.5 || tied[2] != 1 {
		t.Errorf("tied ranks = %v", tied)
	}
}

func TestFriedmanSeparatesClearWinner(t *testing.T) {
	// Algorithm 0 always best, 2 always worst across 20 datasets.
	var scores [][]float64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		base := rng.Float64()
		scores = append(scores, []float64{base, base + 0.1, base + 0.2})
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("Friedman p = %v, want tiny", res.P)
	}
	if res.AvgRanks[0] != 1 || res.AvgRanks[2] != 3 {
		t.Errorf("ranks = %v", res.AvgRanks)
	}
}

func TestNemenyiCD(t *testing.T) {
	// Paper values: CD=0.5307 for k=3, N=39 at α=0.05 (Figure 6) and
	// CD=0.7511 for k=4, N=39 (Figure 7).
	cd3, err := NemenyiCD(3, 39, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cd3-0.5307) > 0.002 {
		t.Errorf("CD(3,39) = %v, want ≈0.5307 (paper Figure 6)", cd3)
	}
	cd4, err := NemenyiCD(4, 39, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cd4-0.7511) > 0.002 {
		t.Errorf("CD(4,39) = %v, want ≈0.7511 (paper Figure 7)", cd4)
	}
	if _, err := NemenyiCD(1, 10, 0.05); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := NemenyiCD(3, 10, 0.2); err == nil {
		t.Error("untabulated alpha should fail")
	}
}

func TestChiSquareSurvival(t *testing.T) {
	// Known values: P(χ²₂ ≥ 5.991) = 0.05, P(χ²₁ ≥ 3.841) = 0.05.
	if got := ChiSquareSurvival(5.991, 2); math.Abs(got-0.05) > 1e-3 {
		t.Errorf("chi2 survival(5.991,2) = %v", got)
	}
	if got := ChiSquareSurvival(3.841, 1); math.Abs(got-0.05) > 1e-3 {
		t.Errorf("chi2 survival(3.841,1) = %v", got)
	}
	if got := ChiSquareSurvival(0, 3); got != 1 {
		t.Errorf("chi2 survival(0) = %v", got)
	}
	if !math.IsNaN(ChiSquareSurvival(1, 0)) {
		t.Error("df=0 should be NaN")
	}
}
