package alert

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// step is one evaluated hop: the observed value fed to a single-trigger
// evaluator and the transitions expected from it, written compactly as
// "FROM>TO" (empty = no transition).
type step struct {
	v    float64
	want string
}

// runThreshold drives a single proba-trigger evaluator through the steps,
// feeding v as proba[0].
func runThreshold(t *testing.T, trig Trigger, steps []step) {
	t.Helper()
	e, err := NewEvaluator(trig)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range steps {
		var p Point
		switch trig.Kind {
		case KindProba:
			p = Point{Sample: i, Class: 0, Proba: []float64{s.v}}
		case KindDrift:
			p = Point{Sample: i, Class: 0, Proba: []float64{1}, Drift: s.v, HasDrift: !math.IsNaN(s.v)}
		default:
			t.Fatalf("runThreshold only drives proba/drift triggers")
		}
		checkTransitions(t, i, e.Eval(p), s.want)
	}
}

func checkTransitions(t *testing.T, i int, trs []Transition, want string) {
	t.Helper()
	var got []string
	for _, tr := range trs {
		got = append(got, fmt.Sprintf("%s>%s", tr.From, tr.To))
	}
	gotStr := strings.Join(got, " ")
	if gotStr != want {
		t.Fatalf("step %d: transitions %q, want %q", i, gotStr, want)
	}
}

func TestIsInvalidValue(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if !IsInvalidValue(v) {
			t.Errorf("IsInvalidValue(%v) = false, want true", v)
		}
	}
	for _, v := range []float64{0, 3.14, -1e308, 1e308} {
		if IsInvalidValue(v) {
			t.Errorf("IsInvalidValue(%v) = true, want false", v)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateOK: "OK", StatePending: "PENDING", StateFiring: "FIRING", StateResolved: "RESOLVED", State(9): "State(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestThresholdMachine walks every reachable transition of the state
// machine through threshold triggers, one scenario per semantic rule.
func TestThresholdMachine(t *testing.T) {
	// Fires immediately at For=1, resolves immediately at ClearFor=1.
	immediate := Trigger{Kind: KindProba, Rise: 0.9, Clear: 0.5}
	// For=3 debounce, ClearFor=2 resolve debounce.
	debounced := Trigger{Kind: KindProba, Rise: 0.9, Clear: 0.5, For: 3, ClearFor: 2}

	cases := []struct {
		name  string
		trig  Trigger
		steps []step
	}{
		{"ok stays ok below clear", immediate, []step{{0.1, ""}, {0.2, ""}}},
		{"ok holds inside hysteresis band", immediate, []step{{0.6, ""}, {0.89, ""}}},
		{"immediate fire and resolve", immediate, []step{
			{0.95, "OK>FIRING"}, {0.95, ""}, {0.1, "FIRING>RESOLVED"}, {0.1, "RESOLVED>OK"},
		}},
		{"resolved rearms straight to firing", immediate, []step{
			{0.95, "OK>FIRING"}, {0.1, "FIRING>RESOLVED"}, {0.95, "RESOLVED>FIRING"},
		}},
		{"resolved holds to ok in band", immediate, []step{
			{0.95, "OK>FIRING"}, {0.1, "FIRING>RESOLVED"}, {0.7, "RESOLVED>OK"},
		}},
		{"debounce counts consecutive active hops", debounced, []step{
			{0.95, "OK>PENDING"}, {0.95, ""}, {0.95, "PENDING>FIRING"},
		}},
		{"clear racing the debounce wins", debounced, []step{
			{0.95, "OK>PENDING"}, {0.95, ""}, {0.1, "PENDING>OK"},
			// The debounce must restart from zero afterwards.
			{0.95, "OK>PENDING"}, {0.95, ""}, {0.95, "PENDING>FIRING"},
		}},
		{"hysteresis band freezes the debounce", debounced, []step{
			{0.95, "OK>PENDING"}, {0.7, ""}, {0.7, ""}, {0.95, ""}, {0.95, "PENDING>FIRING"},
		}},
		{"flapping inside the band never fires", debounced, []step{
			{0.7, ""}, {0.89, ""}, {0.51, ""}, {0.88, ""}, {0.6, ""},
		}},
		{"resolve debounce needs consecutive clears", debounced, []step{
			{0.95, "OK>PENDING"}, {0.95, ""}, {0.95, "PENDING>FIRING"},
			{0.1, ""}, {0.95, ""}, // clear streak broken by re-activation
			{0.1, ""}, {0.1, "FIRING>RESOLVED"},
			{0.1, "RESOLVED>OK"},
		}},
		{"band holds the resolve debounce", debounced, []step{
			{0.95, "OK>PENDING"}, {0.95, ""}, {0.95, "PENDING>FIRING"},
			{0.1, ""}, {0.7, ""}, {0.1, "FIRING>RESOLVED"},
		}},
		{"invalid values hold everywhere", immediate, []step{
			{math.NaN(), ""}, {0.95, "OK>FIRING"}, {math.Inf(1), ""}, {math.NaN(), ""},
			{0.1, "FIRING>RESOLVED"},
		}},
		{"resolved with active then full cycle again", debounced, []step{
			{0.95, "OK>PENDING"}, {0.95, ""}, {0.95, "PENDING>FIRING"},
			{0.1, ""}, {0.1, "FIRING>RESOLVED"},
			{0.95, "RESOLVED>PENDING"}, {0.95, ""}, {0.95, "PENDING>FIRING"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runThreshold(t, tc.trig, tc.steps) })
	}
}

// TestDriftMachine checks drift triggers see the drift score and treat a
// missing score (HasDrift=false) as a held hop.
func TestDriftMachine(t *testing.T) {
	trig := Trigger{Kind: KindDrift, Rise: 3, Clear: 1}
	runThreshold(t, trig, []step{
		{0.5, ""},
		{5, "OK>FIRING"},
		{math.NaN(), ""}, // HasDrift=false in runThreshold for NaN
		{2, ""},          // band
		{0.5, "FIRING>RESOLVED"},
		{0.5, "RESOLVED>OK"},
	})
}

// TestFlipMachine checks label-flip triggers: baseline latching, explicit
// baselines, and debounced flips.
func TestFlipMachine(t *testing.T) {
	eval := func(t *testing.T, trig Trigger, classes []int, want []string) {
		t.Helper()
		e, err := NewEvaluator(trig)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range classes {
			checkTransitions(t, i, e.Eval(Point{Sample: i, Class: c, Proba: []float64{1}}), want[i])
		}
	}

	t.Run("latched baseline", func(t *testing.T) {
		eval(t, Trigger{Kind: KindFlip},
			[]int{0, 0, 1, 1, 0, 0},
			[]string{"", "", "OK>FIRING", "", "FIRING>RESOLVED", "RESOLVED>OK"})
	})
	t.Run("explicit baseline fires on first point", func(t *testing.T) {
		eval(t, Trigger{Kind: KindFlip, Baseline: 1, BaselineSet: true},
			[]int{0, 1},
			[]string{"OK>FIRING", "FIRING>RESOLVED"})
	})
	t.Run("debounced flip ignores a single blip", func(t *testing.T) {
		eval(t, Trigger{Kind: KindFlip, For: 2},
			[]int{0, 1, 0, 1, 1, 0},
			[]string{"", "OK>PENDING", "PENDING>OK", "OK>PENDING", "PENDING>FIRING", "FIRING>RESOLVED"})
	})
	t.Run("flip to a third class keeps firing", func(t *testing.T) {
		eval(t, Trigger{Kind: KindFlip},
			[]int{0, 1, 2, 0},
			[]string{"", "OK>FIRING", "", "FIRING>RESOLVED"})
	})
}

// TestTransitionPayload pins the fields carried by a transition: trigger
// name, sample index, and the observed value that drove the decision.
func TestTransitionPayload(t *testing.T) {
	e, err := NewEvaluator(Trigger{Name: "hot", Kind: KindProba, Class: 1, Rise: 0.9, Clear: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	trs := e.Eval(Point{Sample: 640, Class: 1, Proba: []float64{0.05, 0.95}})
	if len(trs) != 1 {
		t.Fatalf("got %d transitions, want 1", len(trs))
	}
	tr := trs[0]
	if tr.Trigger != "hot" || tr.From != StateOK || tr.To != StateFiring || tr.Sample != 640 || tr.Value != 0.95 {
		t.Fatalf("transition = %+v", tr)
	}

	// Flip transitions carry the observed class as the value.
	e2, err := NewEvaluator(Trigger{Kind: KindFlip, Baseline: 0, BaselineSet: true})
	if err != nil {
		t.Fatal(err)
	}
	trs = e2.Eval(Point{Sample: 7, Class: 2, Proba: []float64{0, 0, 1}})
	if len(trs) != 1 || trs[0].Value != 2 {
		t.Fatalf("flip transition = %+v, want value 2", trs)
	}
}

// TestMultiTriggerOrder pins that transitions are reported in trigger
// order within one hop.
func TestMultiTriggerOrder(t *testing.T) {
	e, err := NewEvaluator(
		Trigger{Name: "a", Kind: KindProba, Class: 0, Rise: 0.9, Clear: 0.5},
		Trigger{Name: "b", Kind: KindFlip, Baseline: 1, BaselineSet: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	trs := e.Eval(Point{Sample: 1, Class: 0, Proba: []float64{0.95}})
	if len(trs) != 2 || trs[0].Trigger != "a" || trs[1].Trigger != "b" {
		t.Fatalf("transitions = %+v, want [a b]", trs)
	}
}

// TestProbaClassOutOfRange: a class index past the proba vector is missing
// data, not a panic and not a threshold crossing.
func TestProbaClassOutOfRange(t *testing.T) {
	e, err := NewEvaluator(Trigger{Kind: KindProba, Class: 5, Rise: 0.9, Clear: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if trs := e.Eval(Point{Sample: 0, Class: 0, Proba: []float64{1, 0}}); trs != nil {
		t.Fatalf("out-of-range class produced transitions: %+v", trs)
	}
}

func TestEvaluatorReset(t *testing.T) {
	e, err := NewEvaluator(Trigger{Kind: KindFlip})
	if err != nil {
		t.Fatal(err)
	}
	e.Eval(Point{Sample: 0, Class: 0, Proba: []float64{1}})
	e.Eval(Point{Sample: 1, Class: 1, Proba: []float64{1}}) // FIRING, baseline 0
	e.Reset()
	if st := e.States()[0]; st.State != StateOK {
		t.Fatalf("state after Reset = %v, want OK", st.State)
	}
	// Baseline must re-latch: class 1 is now the new normal.
	if trs := e.Eval(Point{Sample: 0, Class: 1, Proba: []float64{1}}); trs != nil {
		t.Fatalf("re-latched baseline still fired: %+v", trs)
	}

	// An explicit baseline survives Reset.
	e2, err := NewEvaluator(Trigger{Kind: KindFlip, Baseline: 0, BaselineSet: true})
	if err != nil {
		t.Fatal(err)
	}
	e2.Eval(Point{Sample: 0, Class: 1, Proba: []float64{1}})
	e2.Reset()
	if trs := e2.Eval(Point{Sample: 0, Class: 1, Proba: []float64{1}}); len(trs) != 1 {
		t.Fatalf("explicit baseline lost by Reset: %+v", trs)
	}
}

func TestEvaluatorStates(t *testing.T) {
	e, err := NewEvaluator(
		Trigger{Name: "a", Kind: KindProba, Class: 0, Rise: 0.9, Clear: 0.5},
		Trigger{Name: "b", Kind: KindFlip},
	)
	if err != nil {
		t.Fatal(err)
	}
	e.Eval(Point{Sample: 0, Class: 0, Proba: []float64{0.95}})
	sts := e.States()
	if len(sts) != 2 || sts[0] != (Status{Name: "a", State: StateFiring}) || sts[1] != (Status{Name: "b", State: StateOK}) {
		t.Fatalf("States() = %+v", sts)
	}
}

func TestNewEvaluatorRejects(t *testing.T) {
	cases := []struct {
		name     string
		triggers []Trigger
	}{
		{"no triggers", nil},
		{"invalid trigger", []Trigger{{Kind: KindProba, Rise: 0.5, Clear: 0.9}}},
		{"duplicate names", []Trigger{
			{Name: "x", Kind: KindFlip},
			{Name: "x", Kind: KindDrift, Rise: 2, Clear: 1},
		}},
		{"duplicate default names", []Trigger{{Kind: KindFlip}, {Kind: KindFlip}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEvaluator(tc.triggers...); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestTriggersAccessorsAndNeedsDrift(t *testing.T) {
	e, err := NewEvaluator(Trigger{Kind: KindFlip})
	if err != nil {
		t.Fatal(err)
	}
	if e.NeedsDrift() {
		t.Fatal("flip-only evaluator claims to need drift")
	}
	got := e.Triggers()
	if len(got) != 1 || got[0].Name != "flip" || got[0].For != 1 || got[0].ClearFor != 1 {
		t.Fatalf("Triggers() = %+v, want defaults filled", got)
	}
	// Mutating the copy must not touch the evaluator.
	got[0].Name = "mutated"
	if e.Triggers()[0].Name != "flip" {
		t.Fatal("Triggers() exposed internal state")
	}

	e2, err := NewEvaluator(Trigger{Kind: KindDrift, Rise: 2, Clear: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !e2.NeedsDrift() {
		t.Fatal("drift evaluator does not need drift")
	}
	// Missing drift holds forever: never fires.
	for i := 0; i < 5; i++ {
		if trs := e2.Eval(Point{Sample: i, Class: 0, Proba: []float64{1}}); trs != nil {
			t.Fatalf("drift trigger fired without drift data: %+v", trs)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		t    Trigger
	}{
		{"no kind", Trigger{}},
		{"unknown kind", Trigger{Kind: "banana"}},
		{"clear above rise", Trigger{Kind: KindProba, Rise: 0.5, Clear: 0.9}},
		{"clear equals rise", Trigger{Kind: KindProba, Rise: 0.5, Clear: 0.5}},
		{"nan rise", Trigger{Kind: KindProba, Rise: math.NaN(), Clear: 0.1}},
		{"inf rise", Trigger{Kind: KindDrift, Rise: math.Inf(1), Clear: 0.1}},
		{"nan clear", Trigger{Kind: KindDrift, Rise: 1, Clear: math.NaN()}},
		{"neg inf clear", Trigger{Kind: KindProba, Rise: 0.9, Clear: math.Inf(-1)}},
		{"proba rise above one", Trigger{Kind: KindProba, Rise: 1.5, Clear: 0.1}},
		{"proba clear below zero", Trigger{Kind: KindProba, Rise: 0.9, Clear: -0.1}},
		{"drift clear below zero", Trigger{Kind: KindDrift, Rise: 1, Clear: -1}},
		{"negative class", Trigger{Kind: KindProba, Class: -1, Rise: 0.9, Clear: 0.1}},
		{"class on drift", Trigger{Kind: KindDrift, Class: 1, Rise: 2, Clear: 1}},
		{"class on flip", Trigger{Kind: KindFlip, Class: 1}},
		{"levels on flip", Trigger{Kind: KindFlip, Rise: 0.5}},
		{"baseline on proba", Trigger{Kind: KindProba, Rise: 0.9, Clear: 0.1, BaselineSet: true}},
		{"negative baseline", Trigger{Kind: KindFlip, Baseline: -1, BaselineSet: true}},
		{"negative for", Trigger{Kind: KindFlip, For: -1}},
		{"bad name chars", Trigger{Kind: KindFlip, Name: `a"b`}},
		{"name with spaces", Trigger{Kind: KindFlip, Name: "a b"}},
		{"name too long", Trigger{Kind: KindFlip, Name: strings.Repeat("x", 65)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.t.Validate()
			if err == nil {
				t.Fatal("want error")
			}
			if !isBadTrigger(err) {
				t.Fatalf("error %v does not match ErrBadTrigger", err)
			}
		})
	}
}

func isBadTrigger(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrBadTrigger {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
