// Package alert evaluates per-stream trigger rules over the prediction
// sequence a sliding-window stream emits — one (class, proba, drift) point
// per hop — and turns them into an explicit alert state machine whose
// transitions are delivered to sinks (log lines, webhooks).
//
// # State machine
//
// Every trigger owns an independent four-state machine:
//
//	        condition active            held For hops
//	OK ───────────────────────▶ PENDING ─────────────▶ FIRING
//	 ▲ ◀──────────────────────────┘                      │
//	 │        condition clear                            │ clear held
//	 │                                                   │ ClearFor hops
//	 └──────────────────────── RESOLVED ◀────────────────┘
//	          next hop
//
// OK→FIRING is direct when For ≤ 1. RESOLVED is observable for exactly one
// hop: on the next evaluation it behaves like OK (re-arming into PENDING or
// FIRING immediately if the condition is active again).
//
// # Hysteresis
//
// Threshold triggers (proba, drift) carry two levels: the condition is
// active at value ≥ Rise, clear at value < Clear, and *held* in between —
// a held hop changes nothing: debounce counters neither advance nor reset,
// so a value parked inside the band cannot fire, resolve, or reset a
// pending alert. Clear must be strictly below Rise.
//
// Invalid values (NaN, ±Inf) and missing drift scores are treated as held
// hops: no data is never evidence for or against an alert.
//
// # Determinism
//
// Evaluation is a pure function of the point sequence: no clocks, no
// randomness, no goroutines. Identical prediction sequences produce
// bit-identical transition sequences — which makes alert decisions
// unit-testable and reproducible at any extraction worker count (the
// prediction sequence itself is bit-identical by the library's concurrency
// contract; see docs/concurrency.md and docs/alerting.md).
package alert

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadTrigger reports an invalid trigger configuration or spec string.
// Every validation and parse failure wraps it, so callers can map the
// whole family (e.g. onto HTTP 400) with a single errors.Is.
var ErrBadTrigger = errors.New("alert: invalid trigger")

// State is one of the four alert states.
type State uint8

const (
	StateOK       State = iota // condition clear
	StatePending               // condition active, debounce not yet satisfied
	StateFiring                // alert active
	StateResolved              // alert just cleared; transient for one hop
)

// String returns the canonical upper-case state name.
func (s State) String() string {
	switch s {
	case StateOK:
		return "OK"
	case StatePending:
		return "PENDING"
	case StateFiring:
		return "FIRING"
	case StateResolved:
		return "RESOLVED"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Kind selects what a trigger watches.
type Kind string

const (
	// KindProba thresholds the predicted probability of one class with
	// rise/clear hysteresis.
	KindProba Kind = "proba"
	// KindDrift thresholds the window's drift/novelty score (distance to
	// the training-class feature centroids) with rise/clear hysteresis.
	KindDrift Kind = "drift"
	// KindFlip is a label-flip trigger: the condition is active while the
	// predicted class differs from the baseline label (a configured label,
	// or the first prediction observed when none is configured).
	KindFlip Kind = "flip"
)

// Trigger is one alert rule. The zero value is not valid; fill Kind and the
// kind's fields, then Validate (NewEvaluator validates for you).
type Trigger struct {
	// Name labels the trigger in transitions, events and metrics. Empty
	// picks the canonical name for the kind ("proba<class>", "drift",
	// "flip"). Names must be unique within an Evaluator.
	Name string
	// Kind selects the rule family.
	Kind Kind
	// Class is the class index whose probability KindProba watches.
	Class int
	// Rise is the firing level: the condition is active at value ≥ Rise
	// (proba and drift kinds).
	Rise float64
	// Clear is the clearing level: the condition is clear at value < Clear.
	// Must be strictly below Rise; values in [Clear, Rise) are held by
	// hysteresis (proba and drift kinds).
	Clear float64
	// Baseline is the expected label for KindFlip when BaselineSet is
	// true. Otherwise the baseline latches to the class of the first
	// evaluated point.
	Baseline    int
	BaselineSet bool
	// For is the debounce: the condition must be active for this many
	// consecutive hops before the trigger fires (0 means 1 — fire on the
	// first active hop).
	For int
	// ClearFor is the resolve debounce: the condition must be clear for
	// this many consecutive hops before a firing trigger resolves
	// (0 means 1).
	ClearFor int
}

// IsInvalidValue reports whether v carries no alerting information: NaN and
// ±Inf have no place in a probability or distance and are treated as
// missing data (held hops), never as threshold crossings.
func IsInvalidValue(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// badTriggerf wraps ErrBadTrigger with a formatted reason.
func badTriggerf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadTrigger, fmt.Sprintf(format, args...))
}

// defaultName returns the canonical name for the trigger's kind.
func (t Trigger) defaultName() string {
	switch t.Kind {
	case KindProba:
		return fmt.Sprintf("proba%d", t.Class)
	case KindDrift:
		return "drift"
	case KindFlip:
		return "flip"
	}
	return string(t.Kind)
}

// withDefaults returns the trigger with empty optional fields filled.
func (t Trigger) withDefaults() Trigger {
	if t.Name == "" {
		t.Name = t.defaultName()
	}
	if t.For < 1 {
		t.For = 1
	}
	if t.ClearFor < 1 {
		t.ClearFor = 1
	}
	return t
}

// validName reports whether the name is safe to embed in Prometheus label
// values, NDJSON lines and trigger spec strings: letters, digits, and
// _ - . : [ ] (no spec separators, quotes or control characters).
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '_' || c == '-' || c == '.' || c == ':' || c == '[' || c == ']':
		default:
			return false
		}
	}
	return true
}

// Validate checks the trigger. All failures match errors.Is(err,
// ErrBadTrigger). Defaults (empty Name, zero For/ClearFor) are legal — they
// are filled by NewEvaluator — but levels must be explicit: proba and drift
// triggers require finite Rise and Clear with Clear strictly below Rise
// (a band where clear ≥ rise could never resolve and is rejected).
func (t Trigger) Validate() error {
	switch t.Kind {
	case KindProba, KindDrift:
		if t.BaselineSet {
			return badTriggerf("baseline is only valid for kind=flip")
		}
		if IsInvalidValue(t.Rise) {
			return badTriggerf("rise %v is not a finite number", t.Rise)
		}
		if IsInvalidValue(t.Clear) {
			return badTriggerf("clear %v is not a finite number", t.Clear)
		}
		if t.Clear >= t.Rise {
			return badTriggerf("clear %v must be strictly below rise %v (hysteresis band)", t.Clear, t.Rise)
		}
		if t.Kind == KindProba {
			if t.Class < 0 {
				return badTriggerf("class %d must be non-negative", t.Class)
			}
			if t.Rise > 1 || t.Clear < 0 {
				return badTriggerf("proba levels must satisfy 0 <= clear < rise <= 1 (got rise=%v clear=%v)", t.Rise, t.Clear)
			}
		} else {
			if t.Clear < 0 {
				return badTriggerf("drift levels must be non-negative (got clear=%v)", t.Clear)
			}
			if t.Class != 0 {
				return badTriggerf("class is only valid for kind=proba")
			}
		}
	case KindFlip:
		if t.Rise != 0 || t.Clear != 0 {
			return badTriggerf("rise/clear are only valid for kind=proba and kind=drift")
		}
		if t.Class != 0 {
			return badTriggerf("class is only valid for kind=proba")
		}
		if t.BaselineSet && t.Baseline < 0 {
			return badTriggerf("baseline %d must be non-negative", t.Baseline)
		}
	case "":
		return badTriggerf("kind is required")
	default:
		return badTriggerf("unknown kind %q", t.Kind)
	}
	if t.Name != "" && !validName(t.Name) {
		return badTriggerf("name %q must be 1-64 characters of letters, digits, or _-.:[]", t.Name)
	}
	if t.For < 0 || t.ClearFor < 0 {
		return badTriggerf("for/clearfor must be positive")
	}
	return nil
}

// Point is one hop's observation: the prediction (and, when the model
// carries a drift baseline, the window's drift score) at a sample index.
type Point struct {
	Sample   int
	Class    int
	Proba    []float64
	Drift    float64
	HasDrift bool
}

// Transition records one state change of one trigger. Value is the
// observation that drove the decision: the watched probability, the drift
// score, or (for flip triggers) the predicted class.
type Transition struct {
	Trigger string
	From    State
	To      State
	Sample  int
	Value   float64
}

// Status pairs a trigger name with its current state.
type Status struct {
	Name  string
	State State
}

// cond is the tri-state outcome of a trigger's condition on one point.
type cond uint8

const (
	condHeld     cond = iota // hysteresis band or invalid/missing value
	condActive               // firing condition satisfied
	condInactive             // clearing condition satisfied
)

type triggerState struct {
	state       State
	active      int // consecutive active hops (debounce toward firing)
	clear       int // consecutive clear hops while firing (toward resolve)
	baseline    int
	baselineSet bool
}

// Evaluator runs a fixed set of triggers over a point sequence. It is a
// single-writer object (one evaluator per stream); it holds no locks, no
// clocks and spawns no goroutines.
type Evaluator struct {
	triggers []Trigger
	states   []triggerState
}

// NewEvaluator validates the triggers, fills their defaults, and returns a
// ready evaluator with every trigger in StateOK. Duplicate names are
// rejected: transitions and metrics are keyed by name.
func NewEvaluator(triggers ...Trigger) (*Evaluator, error) {
	if len(triggers) == 0 {
		return nil, badTriggerf("at least one trigger is required")
	}
	ts := make([]Trigger, len(triggers))
	seen := make(map[string]struct{}, len(triggers))
	for i, t := range triggers {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("trigger %d: %w", i, err)
		}
		t = t.withDefaults()
		if _, dup := seen[t.Name]; dup {
			return nil, badTriggerf("duplicate trigger name %q", t.Name)
		}
		seen[t.Name] = struct{}{}
		ts[i] = t
	}
	e := &Evaluator{triggers: ts, states: make([]triggerState, len(ts))}
	e.Reset()
	return e, nil
}

// Triggers returns a copy of the evaluator's triggers with defaults filled.
func (e *Evaluator) Triggers() []Trigger {
	out := make([]Trigger, len(e.triggers))
	copy(out, e.triggers)
	return out
}

// NeedsDrift reports whether any trigger watches the drift score — callers
// without a drift baseline should reject such configurations up front
// rather than feed permanently-held triggers.
func (e *Evaluator) NeedsDrift() bool {
	for _, t := range e.triggers {
		if t.Kind == KindDrift {
			return true
		}
	}
	return false
}

// Reset returns every trigger to StateOK and clears all debounce counters
// and latched baselines, for reuse on a new series.
func (e *Evaluator) Reset() {
	for i := range e.states {
		e.states[i] = triggerState{}
		if t := e.triggers[i]; t.BaselineSet {
			e.states[i].baseline = t.Baseline
			e.states[i].baselineSet = true
		}
	}
}

// States returns each trigger's name and current state, in trigger order.
func (e *Evaluator) States() []Status {
	out := make([]Status, len(e.triggers))
	for i, t := range e.triggers {
		out[i] = Status{Name: t.Name, State: e.states[i].state}
	}
	return out
}

// condition evaluates one trigger's condition on a point, returning the
// tri-state outcome and the observed value.
func (e *Evaluator) condition(i int, p Point) (cond, float64) {
	t := &e.triggers[i]
	st := &e.states[i]
	switch t.Kind {
	case KindProba:
		if t.Class >= len(p.Proba) {
			return condHeld, math.NaN()
		}
		return thresholdCond(p.Proba[t.Class], t.Rise, t.Clear)
	case KindDrift:
		if !p.HasDrift {
			return condHeld, math.NaN()
		}
		return thresholdCond(p.Drift, t.Rise, t.Clear)
	default: // KindFlip
		if !st.baselineSet {
			st.baseline = p.Class
			st.baselineSet = true
		}
		if p.Class != st.baseline {
			return condActive, float64(p.Class)
		}
		return condInactive, float64(p.Class)
	}
}

func thresholdCond(v, rise, clear float64) (cond, float64) {
	switch {
	case IsInvalidValue(v):
		return condHeld, v
	case v >= rise:
		return condActive, v
	case v < clear:
		return condInactive, v
	}
	return condHeld, v
}

// Eval advances every trigger by one point and returns the state changes it
// caused, in trigger order (nil when nothing changed — the steady-state
// path allocates nothing). Transitions with To of StateFiring or
// StateResolved are the deliverable alert events; OK/PENDING transitions
// exist for observability.
func (e *Evaluator) Eval(p Point) []Transition {
	var out []Transition
	for i := range e.triggers {
		t := &e.triggers[i]
		st := &e.states[i]
		c, v := e.condition(i, p)
		from := st.state
		to := from
		switch from {
		case StateOK, StateResolved:
			switch c {
			case condActive:
				st.active++
				if st.active >= t.For {
					to = StateFiring
				} else {
					to = StatePending
				}
			case condInactive:
				st.active = 0
				if from == StateResolved {
					to = StateOK
				}
			case condHeld:
				// No data: a resolved trigger still re-arms to OK (its
				// one observable hop is over), counters stay put.
				if from == StateResolved {
					to = StateOK
				}
			}
		case StatePending:
			switch c {
			case condActive:
				st.active++
				if st.active >= t.For {
					to = StateFiring
				}
			case condInactive:
				// Clear racing the debounce: the clear wins, the pending
				// alert never fires.
				st.active = 0
				to = StateOK
			case condHeld:
				// Hysteresis band: debounce neither advances nor resets.
			}
		case StateFiring:
			switch c {
			case condActive:
				st.clear = 0
			case condInactive:
				st.clear++
				if st.clear >= t.ClearFor {
					to = StateResolved
					st.active = 0
					st.clear = 0
				}
			case condHeld:
				// Still firing; resolve debounce holds.
			}
		}
		if to != from {
			st.state = to
			out = append(out, Transition{Trigger: t.Name, From: from, To: to, Sample: p.Sample, Value: v})
		}
	}
	return out
}
