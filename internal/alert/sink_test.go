package alert

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// collectSink records events in memory; the test double for fanout legs.
type collectSink struct {
	mu     sync.Mutex
	events []Event
	closed int
	err    error
}

func (c *collectSink) Deliver(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *collectSink) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed++
	return c.err
}

func (c *collectSink) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func testEvent(sample int) Event {
	return Event{Model: "m", Trigger: "hot", From: "OK", To: "FIRING", Sample: sample, Value: 0.97, At: time.Unix(1700000000, 0).UTC()}
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewLogSink(&buf)
	s.Deliver(testEvent(3))
	s.Deliver(testEvent(4))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := json.Unmarshal(lines[0], &ev); err != nil {
		t.Fatal(err)
	}
	if ev != testEvent(3) {
		t.Fatalf("decoded %+v, want %+v", ev, testEvent(3))
	}
}

func TestFanout(t *testing.T) {
	a, b := &collectSink{}, &collectSink{err: errors.New("boom")}
	s := Fanout(nil, a, nil, b)
	s.Deliver(testEvent(1))
	if a.len() != 1 || b.len() != 1 {
		t.Fatalf("fanout delivered a=%d b=%d, want 1 each", a.len(), b.len())
	}
	if err := s.Close(); err == nil || !errors.Is(err, b.err) {
		t.Fatalf("Close error = %v, want to include boom", err)
	}
	if a.closed != 1 || b.closed != 1 {
		t.Fatalf("closed a=%d b=%d, want 1 each", a.closed, b.closed)
	}

	// Single non-nil sink passes through unchanged; empty fanout is inert.
	if got := Fanout(nil, a, nil); got != Sink(a) {
		t.Fatalf("single fanout = %T, want the sink itself", got)
	}
	empty := Fanout(nil)
	empty.Deliver(testEvent(2))
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}
}
