package alert

import (
	"encoding/json"
	"errors"
	"io"
	"sync"
	"time"
)

// Event is one deliverable alert notification: a FIRING or RESOLVED
// transition of one trigger, with the context a receiver needs to act on
// it. At is stamped at emission time and is deliberately outside the
// determinism contract (transition sequences are deterministic; wall
// clocks are not).
type Event struct {
	Model   string    `json:"model,omitempty"`
	Trigger string    `json:"trigger"`
	From    string    `json:"from"`
	To      string    `json:"to"`
	Sample  int       `json:"sample"`
	Value   float64   `json:"value"`
	At      time.Time `json:"at"`
}

// Sink receives alert events. Deliver must not block the caller on network
// I/O: the stream's hop loop sits between samples, and a slow receiver
// must cost queue space, not prediction latency. Close releases any
// delivery goroutines; implementations must be safe for concurrent Deliver
// from many streams.
type Sink interface {
	Deliver(Event)
	Close() error
}

// ---- log sink ----

// LogSink writes one JSON line per event to a writer. It is the zero-
// dependency default sink and the usual fallback target of a webhook.Sink
// (internal/alert/webhook).
type LogSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogSink returns a sink writing NDJSON events to w.
func NewLogSink(w io.Writer) *LogSink { return &LogSink{w: w} }

// Deliver writes the event as one JSON line. Encoding errors are swallowed:
// a log line is best-effort by definition.
func (s *LogSink) Deliver(ev Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w.Write(line)
}

// Close implements Sink; a LogSink holds no resources.
func (s *LogSink) Close() error { return nil }

// ---- fanout ----

// fanoutSink delivers every event to each sink in order.
type fanoutSink struct{ sinks []Sink }

// Fanout combines sinks into one: Deliver goes to every sink in order,
// Close closes them all (errors joined). Nil sinks are skipped; a fanout
// of one sink is that sink.
func Fanout(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	if len(kept) == 1 {
		return kept[0]
	}
	return &fanoutSink{sinks: kept}
}

func (f *fanoutSink) Deliver(ev Event) {
	for _, s := range f.sinks {
		s.Deliver(ev)
	}
}

func (f *fanoutSink) Close() error {
	var errs []error
	for _, s := range f.sinks {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
