package alert

import (
	"errors"
	"strings"
	"testing"
)

func TestParseTrigger(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want Trigger
	}{
		{"proba commas", "kind=proba,class=1,rise=0.9,clear=0.6",
			Trigger{Kind: KindProba, Class: 1, Rise: 0.9, Clear: 0.6}},
		{"proba whitespace", "kind=proba class=0 rise=0.8 clear=0.2",
			Trigger{Kind: KindProba, Rise: 0.8, Clear: 0.2}},
		{"mixed separators", "kind=drift, rise=3\tclear=1.5",
			Trigger{Kind: KindDrift, Rise: 3, Clear: 1.5}},
		{"flip bare", "kind=flip", Trigger{Kind: KindFlip}},
		{"flip baseline", "kind=flip,baseline=2",
			Trigger{Kind: KindFlip, Baseline: 2, BaselineSet: true}},
		{"named with debounce", "kind=proba,name=hot,class=1,rise=0.9,clear=0.5,for=3,clearfor=2",
			Trigger{Name: "hot", Kind: KindProba, Class: 1, Rise: 0.9, Clear: 0.5, For: 3, ClearFor: 2}},
		{"scientific levels", "kind=drift,rise=1e2,clear=5e-1",
			Trigger{Kind: KindDrift, Rise: 100, Clear: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseTrigger(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("ParseTrigger(%q) = %+v, want %+v", tc.spec, got, tc.want)
			}
		})
	}
}

func TestParseTriggerRejects(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"empty", ""},
		{"separators only", " ,, "},
		{"no kind", "rise=0.9,clear=0.5"},
		{"unknown kind", "kind=banana"},
		{"unknown key", "kind=flip,color=red"},
		{"duplicate key", "kind=proba,rise=0.9,rise=0.8,clear=0.5"},
		{"bare word", "kind=flip,oops"},
		{"empty value", "kind=flip,name="},
		{"missing rise", "kind=proba,clear=0.5"},
		{"missing clear", "kind=proba,rise=0.9"},
		{"drift missing levels", "kind=drift"},
		{"clear above rise", "kind=proba,rise=0.5,clear=0.9"},
		{"clear equals rise", "kind=drift,rise=2,clear=2"},
		{"rise not a number", "kind=proba,rise=high,clear=0.5"},
		{"nan rise", "kind=proba,rise=NaN,clear=0.5"},
		{"inf rise", "kind=drift,rise=+Inf,clear=1"},
		{"neg inf clear", "kind=drift,rise=1,clear=-Inf"},
		{"proba rise above one", "kind=proba,rise=1.5,clear=0.5"},
		{"class not integer", "kind=proba,class=one,rise=0.9,clear=0.5"},
		{"for zero", "kind=flip,for=0"},
		{"for negative", "kind=flip,for=-2"},
		{"clearfor not integer", "kind=flip,clearfor=2.5"},
		{"baseline not integer", "kind=flip,baseline=x"},
		{"baseline on proba", "kind=proba,rise=0.9,clear=0.5,baseline=1"},
		{"bad name", "kind=flip,name=a/b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrigger(tc.spec)
			if err == nil {
				t.Fatalf("ParseTrigger(%q) accepted", tc.spec)
			}
			if !errors.Is(err, ErrBadTrigger) {
				t.Fatalf("error %v does not match ErrBadTrigger", err)
			}
		})
	}
}

func TestParseTriggers(t *testing.T) {
	got, err := ParseTriggers("kind=flip; kind=drift,rise=3,clear=1 ;; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != KindFlip || got[1].Kind != KindDrift {
		t.Fatalf("ParseTriggers = %+v", got)
	}

	if _, err := ParseTriggers(" ; ; "); !errors.Is(err, ErrBadTrigger) {
		t.Fatalf("empty list error = %v, want ErrBadTrigger", err)
	}
	// A bad segment names itself in the error.
	_, err = ParseTriggers("kind=flip;kind=nope")
	if err == nil || !strings.Contains(err.Error(), `"kind=nope"`) {
		t.Fatalf("segment error = %v, want spec quoted", err)
	}
}

// TestTriggerStringRoundTrip pins the canonical form and that it parses
// back to the same trigger.
func TestTriggerStringRoundTrip(t *testing.T) {
	cases := []struct {
		trig Trigger
		want string
	}{
		{Trigger{Kind: KindProba, Class: 1, Rise: 0.9, Clear: 0.6},
			"kind=proba,class=1,rise=0.9,clear=0.6"},
		{Trigger{Name: "hot", Kind: KindProba, Class: 0, Rise: 0.8, Clear: 0.2, For: 3, ClearFor: 2},
			"kind=proba,name=hot,class=0,rise=0.8,clear=0.2,for=3,clearfor=2"},
		{Trigger{Kind: KindDrift, Rise: 100, Clear: 0.5}, "kind=drift,rise=100,clear=0.5"},
		{Trigger{Kind: KindFlip}, "kind=flip"},
		{Trigger{Kind: KindFlip, Baseline: 2, BaselineSet: true}, "kind=flip,baseline=2"},
		// A name equal to the default is omitted; For/ClearFor of 1 are
		// defaults and omitted too.
		{Trigger{Name: "drift", Kind: KindDrift, Rise: 2, Clear: 1, For: 1, ClearFor: 1},
			"kind=drift,rise=2,clear=1"},
	}
	for _, tc := range cases {
		got := tc.trig.String()
		if got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
			continue
		}
		back, err := ParseTrigger(got)
		if err != nil {
			t.Errorf("reparse %q: %v", got, err)
			continue
		}
		if back.withDefaults() != tc.trig.withDefaults() {
			t.Errorf("round trip %q = %+v, want %+v", got, back, tc.trig)
		}
	}
}

// FuzzParseTrigger feeds arbitrary specs to the parser. Accepted specs must
// validate, render canonically, and round-trip to the same trigger; the
// canonical form must itself be a fixed point. Nothing may panic.
func FuzzParseTrigger(f *testing.F) {
	f.Add("kind=proba,class=1,rise=0.9,clear=0.6")
	f.Add("kind=drift rise=3 clear=1.5 for=2")
	f.Add("kind=flip,baseline=1,clearfor=4")
	f.Add("kind=proba,rise=NaN,clear=0.5")
	f.Add("kind=drift,rise=+Inf,clear=-Inf")
	f.Add("kind=proba,rise=0.5,clear=0.9")
	f.Add("kind=drift,rise=1,clear=1")
	f.Add("kind=flip,name=a..b,for=999999999999999999999")
	f.Add(",,=,=,kind==,")
	f.Fuzz(func(t *testing.T, spec string) {
		trig, err := ParseTrigger(spec)
		if err != nil {
			if !errors.Is(err, ErrBadTrigger) {
				t.Fatalf("parse error %v does not match ErrBadTrigger", err)
			}
			return
		}
		if err := trig.Validate(); err != nil {
			t.Fatalf("accepted trigger fails Validate: %+v: %v", trig, err)
		}
		canon := trig.String()
		back, err := ParseTrigger(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", canon, err)
		}
		if back.withDefaults() != trig.withDefaults() {
			t.Fatalf("round trip %q: %+v != %+v", canon, back, trig)
		}
		if again := back.String(); again != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again)
		}
	})
}
