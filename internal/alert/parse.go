package alert

import (
	"fmt"
	"strconv"
	"strings"
)

// Trigger spec grammar — the compact form accepted by `mvgcli stream
// -alert` and the serving endpoint's ?alert= query parameter:
//
//	spec     := field ("," field | whitespace field)*
//	field    := key "=" value
//	keys     := kind | name | class | rise | clear | for | clearfor | baseline
//
// Commas and whitespace both separate fields, so a spec can live unescaped
// inside a URL query value ("kind=proba,class=1,rise=0.9,clear=0.6") or
// read naturally on a command line ("kind=drift rise=3 clear=1.5").
// Multiple specs are joined with ';' (ParseTriggers). Unknown keys,
// duplicate keys, non-finite levels (NaN, ±Inf) and hysteresis bands where
// clear ≥ rise are all rejected; every parse failure matches
// errors.Is(err, ErrBadTrigger).

// ParseTrigger parses one trigger spec.
func ParseTrigger(spec string) (Trigger, error) {
	var t Trigger
	seen := make(map[string]struct{}, 4)
	fields := strings.FieldsFunc(spec, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if len(fields) == 0 {
		return t, badTriggerf("empty trigger spec")
	}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok || key == "" || val == "" {
			return t, badTriggerf("field %q is not key=value", f)
		}
		if _, dup := seen[key]; dup {
			return t, badTriggerf("duplicate field %q", key)
		}
		seen[key] = struct{}{}
		var err error
		switch key {
		case "kind":
			t.Kind = Kind(val)
		case "name":
			t.Name = val
		case "class":
			t.Class, err = parseInt(key, val)
		case "rise":
			t.Rise, err = parseLevel(key, val)
		case "clear":
			t.Clear, err = parseLevel(key, val)
		case "for":
			t.For, err = parsePositiveInt(key, val)
		case "clearfor":
			t.ClearFor, err = parsePositiveInt(key, val)
		case "baseline":
			t.Baseline, err = parseInt(key, val)
			t.BaselineSet = err == nil
		default:
			return t, badTriggerf("unknown field %q", key)
		}
		if err != nil {
			return t, err
		}
	}
	if _, ok := seen["kind"]; !ok {
		return t, badTriggerf("kind is required")
	}
	if t.Kind == KindProba || t.Kind == KindDrift {
		// Explicit levels only: a defaulted threshold that silently never
		// fires (or never clears) is worse than an error.
		if _, ok := seen["rise"]; !ok {
			return t, badTriggerf("kind=%s requires rise", t.Kind)
		}
		if _, ok := seen["clear"]; !ok {
			return t, badTriggerf("kind=%s requires clear", t.Kind)
		}
	}
	if err := t.Validate(); err != nil {
		return t, err
	}
	return t, nil
}

// ParseTriggers parses a ';'-separated list of trigger specs. Empty
// segments are skipped; at least one trigger must survive.
func ParseTriggers(specs string) ([]Trigger, error) {
	var out []Trigger
	for _, spec := range strings.Split(specs, ";") {
		if strings.TrimSpace(spec) == "" {
			continue
		}
		t, err := ParseTrigger(spec)
		if err != nil {
			return nil, fmt.Errorf("spec %q: %w", spec, err)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, badTriggerf("no trigger specs")
	}
	return out, nil
}

// String renders the trigger in canonical spec form: parseable by
// ParseTrigger and stable under round-trips (pinned by FuzzParseTrigger).
func (t Trigger) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kind=%s", t.Kind)
	if t.Name != "" && t.Name != t.defaultName() {
		fmt.Fprintf(&b, ",name=%s", t.Name)
	}
	switch t.Kind {
	case KindProba:
		fmt.Fprintf(&b, ",class=%d,rise=%s,clear=%s", t.Class, formatLevel(t.Rise), formatLevel(t.Clear))
	case KindDrift:
		fmt.Fprintf(&b, ",rise=%s,clear=%s", formatLevel(t.Rise), formatLevel(t.Clear))
	case KindFlip:
		if t.BaselineSet {
			fmt.Fprintf(&b, ",baseline=%d", t.Baseline)
		}
	}
	if t.For > 1 {
		fmt.Fprintf(&b, ",for=%d", t.For)
	}
	if t.ClearFor > 1 {
		fmt.Fprintf(&b, ",clearfor=%d", t.ClearFor)
	}
	return b.String()
}

func formatLevel(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parseLevel parses a threshold level, rejecting syntax errors and values
// that carry no alerting information (NaN, ±Inf — strconv accepts their
// spellings, the state machine must never see them as thresholds).
func parseLevel(key, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, badTriggerf("%s %q is not a number", key, val)
	}
	if IsInvalidValue(v) {
		return 0, badTriggerf("%s %v is not a finite number", key, v)
	}
	return v, nil
}

func parseInt(key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, badTriggerf("%s %q is not an integer", key, val)
	}
	return n, nil
}

func parsePositiveInt(key, val string) (int, error) {
	n, err := parseInt(key, val)
	if err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, badTriggerf("%s %d must be at least 1", key, n)
	}
	return n, nil
}
