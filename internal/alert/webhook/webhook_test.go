package webhook

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvg/internal/alert"
)

// collectSink records events in memory; the test double for fallbacks.
type collectSink struct {
	mu     sync.Mutex
	events []alert.Event
	closed int
	err    error
}

func (c *collectSink) Deliver(ev alert.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func (c *collectSink) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed++
	return c.err
}

func (c *collectSink) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testEvent(sample int) alert.Event {
	return alert.Event{Model: "m", Trigger: "hot", From: "OK", To: "FIRING", Sample: sample, Value: 0.97, At: time.Unix(1700000000, 0).UTC()}
}

// TestJitterBackoff pins the jitter window: every sampled wait lands in
// [d/2, d], the whole window is reachable, and two distinct draws occur
// (the anti-thundering-herd property — a degenerate constant jitter would
// re-synchronize retry storms across streams).
func TestJitterBackoff(t *testing.T) {
	const d = 100 * time.Millisecond
	// Deterministic sequence covering the window edges.
	seq := []int64{0, int64(d) / 2, 1, int64(d)/2 - 1}
	i := 0
	fakeRand := func(n int64) int64 {
		v := seq[i%len(seq)] % n
		i++
		return v
	}
	seen := make(map[time.Duration]bool)
	for range seq {
		got := jitterBackoff(d, fakeRand)
		if got < d/2 || got > d {
			t.Fatalf("jitterBackoff(%v) = %v, outside [%v, %v]", d, got, d/2, d)
		}
		seen[got] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced a single value %v across varied draws", seen)
	}
	// Sub-nanosecond-half durations pass through unjittered rather than
	// calling rand with a non-positive bound.
	if got := jitterBackoff(1, fakeRand); got != 1 {
		t.Fatalf("jitterBackoff(1ns) = %v, want 1ns", got)
	}
	if got := jitterBackoff(0, fakeRand); got != 0 {
		t.Fatalf("jitterBackoff(0) = %v, want 0", got)
	}
}

func TestWebhookBadURL(t *testing.T) {
	for _, u := range []string{"", "not a url", "ftp://host/x", "/relative", "http://"} {
		if _, err := New(Config{URL: u}); err == nil {
			t.Errorf("URL %q accepted", u)
		}
	}
}

// TestWebhookDelivers pins the happy path: one POST per event with the
// JSON-encoded alert.Event body, acknowledged by 2xx.
func TestWebhookDelivers(t *testing.T) {
	var mu sync.Mutex
	var got []alert.Event
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ev alert.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			t.Errorf("bad body: %v", err)
		}
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}))
	defer srv.Close()

	s, err := New(Config{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	s.Deliver(testEvent(1))
	s.Deliver(testEvent(2))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != testEvent(1) || got[1] != testEvent(2) {
		t.Fatalf("server saw %+v", got)
	}
	st := s.Stats()
	if st.Delivered != 2 || st.Retries != 0 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWebhookRefusedConnection: a dead endpoint costs exactly MaxAttempts-1
// retries per event, then the event goes to the fallback.
func TestWebhookRefusedConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close() // now guaranteed refused

	fb := &collectSink{}
	s, err := New(Config{
		URL: url, MaxAttempts: 3, Backoff: time.Millisecond, Fallback: fb,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Deliver(testEvent(1))
	waitFor(t, "failed delivery", func() bool { return s.Stats().Failed == 1 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Retries != 2 || st.Delivered != 0 {
		t.Fatalf("stats = %+v, want 2 retries 0 delivered", st)
	}
	if fb.len() != 1 {
		t.Fatalf("fallback saw %d events, want 1", fb.len())
	}
	if fb.closed != 1 {
		t.Fatalf("fallback closed %d times, want 1", fb.closed)
	}
}

// TestWebhook5xxRetriesThenBreaker: 5xx responses retry with backoff; after
// BreakerThreshold consecutive failed events the circuit opens and later
// events skip the network entirely.
func TestWebhook5xxRetriesThenBreaker(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	fb := &collectSink{}
	s, err := New(Config{
		URL: srv.URL, MaxAttempts: 2, Backoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Hour, Fallback: fb,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Deliver(testEvent(i))
	}
	waitFor(t, "fallback to see all events", func() bool { return fb.len() == 4 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// Events 0 and 1 each burn 2 attempts; the breaker then opens and events
	// 2 and 3 never touch the network.
	if st.Failed != 2 || st.BreakerOpens != 1 || st.DroppedBreaker != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if n := hits.Load(); n != 4 {
		t.Fatalf("server saw %d requests, want 4", n)
	}
}

// TestWebhookBreakerRecovers: after the cooldown the sink tries the network
// again and a healthy endpoint closes the circuit.
func TestWebhookBreakerRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	s, err := New(Config{
		URL: srv.URL, MaxAttempts: 1, Backoff: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Deliver(testEvent(0))
	waitFor(t, "breaker to open", func() bool { return s.Stats().BreakerOpens == 1 })
	failing.Store(false)
	time.Sleep(30 * time.Millisecond) // past the cooldown
	s.Deliver(testEvent(1))
	waitFor(t, "recovery delivery", func() bool { return s.Stats().Delivered == 1 })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWebhookSlowResponses: a receiver slower than the client timeout is a
// failed attempt, bounded by MaxAttempts — never an unbounded stall.
func TestWebhookSlowResponses(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	fb := &collectSink{}
	s, err := New(Config{
		URL:         srv.URL,
		Client:      &http.Client{Timeout: 10 * time.Millisecond},
		MaxAttempts: 2, Backoff: time.Millisecond, Fallback: fb,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	s.Deliver(testEvent(1))
	waitFor(t, "slow delivery to fail", func() bool { return s.Stats().Failed == 1 })
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("delivery stalled %v despite 10ms client timeout", elapsed)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Retries != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if fb.len() != 1 {
		t.Fatalf("fallback saw %d events, want 1", fb.len())
	}
}

// TestWebhookQueueOverflow: a stalled worker fills the queue; extra events
// drop to the fallback instead of blocking Deliver.
func TestWebhookQueueOverflow(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))
	defer srv.Close()

	fb := &collectSink{}
	s, err := New(Config{
		URL: srv.URL, QueueSize: 1, MaxAttempts: 1, Fallback: fb,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Deliver(testEvent(0)) // worker picks this up and blocks in the handler
	<-entered
	s.Deliver(testEvent(1)) // fills the queue
	s.Deliver(testEvent(2)) // overflows
	if st := s.Stats(); st.DroppedQueue != 1 {
		t.Fatalf("stats = %+v, want 1 dropped", st)
	}
	if fb.len() != 1 || fb.events[0].Sample != 2 {
		t.Fatalf("fallback = %+v, want just sample 2", fb.events)
	}
	close(release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWebhookDeliverAfterClose: late events are counted and fall back, never
// panic on the closed queue.
func TestWebhookDeliverAfterClose(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	fb := &collectSink{}
	s, err := New(Config{URL: srv.URL, Fallback: fb})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	s.Deliver(testEvent(9))
	if st := s.Stats(); st.DroppedQueue != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if fb.len() != 1 {
		t.Fatalf("fallback saw %d events, want 1", fb.len())
	}
	if fb.closed != 1 {
		t.Fatalf("fallback closed %d times, want 1", fb.closed)
	}
}

// TestWebhookNoGoroutineLeak drives the full fault-injection surface
// (refused connections with retries, then Close mid-backoff) and checks the
// goroutine count returns to baseline.
func TestWebhookNoGoroutineLeak(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		s, err := New(Config{
			URL: url, MaxAttempts: 10, Backoff: time.Hour, // Close must cut the backoff short
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Deliver(testEvent(i))
		waitFor(t, "first retry", func() bool { return s.Stats().Retries >= 1 })
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}

// TestWebhookConcurrentDeliver hammers one sink from many goroutines (the
// many-streams-one-sink shape); every event must be accounted for as
// delivered or dropped-to-fallback. Run with -race.
func TestWebhookConcurrentDeliver(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	fb := &collectSink{}
	s, err := New(Config{URL: srv.URL, QueueSize: 4, Fallback: fb})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Deliver(testEvent(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	total := st.Delivered + st.DroppedQueue
	if total != workers*perWorker {
		t.Fatalf("accounted for %d events, want %d (stats %+v)", total, workers*perWorker, st)
	}
	if int(st.DroppedQueue) != fb.len() {
		t.Fatalf("dropped %d but fallback saw %d", st.DroppedQueue, fb.len())
	}
}
