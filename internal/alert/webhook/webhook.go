// Package webhook posts alert events to an HTTP endpoint with bounded
// retries, exponential backoff, and a circuit breaker.
//
// It is a separate package, not part of internal/alert, so that importing
// the alert machinery never links net/http: the core library (package mvg)
// exposes the evaluator and drift scoring, and linking the HTTP client
// stack into it would cost every non-serving user binary size and
// background allocation noise. Only the binaries that actually deliver
// webhooks (mvgserve, mvgcli) import this package.
package webhook

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"mvg/internal/alert"
)

// Config configures a webhook Sink. Zero values select the defaults noted
// on each field.
type Config struct {
	// URL receives one POST per event with a JSON-encoded alert.Event body
	// (required; http or https).
	URL string
	// Client issues the requests; nil selects a client with a 5s timeout
	// (the per-attempt bound on slow receivers).
	Client *http.Client
	// MaxAttempts bounds delivery tries per event, first try included
	// (default 3).
	MaxAttempts int
	// Backoff is the base wait before the first retry, doubling per retry
	// (default 100ms). Each actual wait is jittered uniformly over
	// [step/2, step] so retry storms from many streams decorrelate
	// instead of hammering a recovering receiver in lockstep.
	Backoff time.Duration
	// QueueSize bounds the delivery queue; Deliver drops (to Fallback)
	// when it is full rather than block the stream (default 64).
	QueueSize int
	// BreakerThreshold opens the circuit after this many consecutive
	// events exhaust their attempts (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit skips the network and
	// routes events straight to Fallback (default 30s).
	BreakerCooldown time.Duration
	// Fallback receives events the webhook gives up on: queue overflow,
	// exhausted retries, open circuit, delivery after Close. Nil counts
	// them in Stats and drops them.
	Fallback alert.Sink
}

// Stats is a point-in-time snapshot of a sink's delivery counters.
type Stats struct {
	Delivered      uint64 // events acknowledged with a 2xx
	Retries        uint64 // extra attempts beyond the first
	Failed         uint64 // events that exhausted MaxAttempts
	DroppedQueue   uint64 // events dropped on a full queue or after Close
	DroppedBreaker uint64 // events skipped while the circuit was open
	BreakerOpens   uint64 // times the circuit opened
}

// Sink posts events to an HTTP endpoint from a single background
// goroutine, with bounded retries, exponential backoff, and a circuit
// breaker: when the endpoint fails BreakerThreshold events in a row, the
// sink stops hammering it for BreakerCooldown and routes events to the
// Fallback sink instead (docs/alerting.md#webhook-delivery). Deliver never
// blocks on the network.
type Sink struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	queue  chan alert.Event

	closing chan struct{} // aborts retry backoffs on Close
	done    chan struct{} // worker exit

	delivered      atomic.Uint64
	retries        atomic.Uint64
	failed         atomic.Uint64
	droppedQueue   atomic.Uint64
	droppedBreaker atomic.Uint64
	breakerOpens   atomic.Uint64

	// worker-goroutine state, unsynchronized by design
	consecFails int
	openUntil   time.Time
}

// New validates the config, fills defaults, and starts the delivery
// goroutine.
func New(cfg Config) (*Sink, error) {
	u, err := url.Parse(cfg.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("alert: webhook URL %q must be absolute http(s)", cfg.URL)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 64
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	s := &Sink{
		cfg:     cfg,
		queue:   make(chan alert.Event, cfg.QueueSize),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// Deliver enqueues the event for asynchronous delivery. A full queue (the
// receiver is slower than the alert rate) and a closed sink drop the event
// to the fallback immediately — bounded memory, never backpressure into
// the prediction loop.
func (s *Sink) Deliver(ev alert.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.droppedQueue.Add(1)
		s.fallback(ev)
		return
	}
	select {
	case s.queue <- ev:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.droppedQueue.Add(1)
		s.fallback(ev)
	}
}

// Close stops accepting events, lets the worker drain what was already
// queued (retry backoffs are cut short), waits for it to exit, and closes
// the fallback. Close is idempotent and safe to call concurrently with
// Deliver.
func (s *Sink) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.closed = true
	close(s.closing)
	close(s.queue)
	s.mu.Unlock()
	<-s.done
	if s.cfg.Fallback != nil {
		return s.cfg.Fallback.Close()
	}
	return nil
}

// Stats returns a snapshot of the delivery counters.
func (s *Sink) Stats() Stats {
	return Stats{
		Delivered:      s.delivered.Load(),
		Retries:        s.retries.Load(),
		Failed:         s.failed.Load(),
		DroppedQueue:   s.droppedQueue.Load(),
		DroppedBreaker: s.droppedBreaker.Load(),
		BreakerOpens:   s.breakerOpens.Load(),
	}
}

func (s *Sink) fallback(ev alert.Event) {
	if s.cfg.Fallback != nil {
		s.cfg.Fallback.Deliver(ev)
	}
}

// run is the delivery goroutine: one event at a time, in order.
func (s *Sink) run() {
	defer close(s.done)
	for ev := range s.queue {
		if time.Now().Before(s.openUntil) {
			s.droppedBreaker.Add(1)
			s.fallback(ev)
			continue
		}
		if s.post(ev) {
			s.consecFails = 0
			continue
		}
		s.failed.Add(1)
		s.consecFails++
		if s.consecFails >= s.cfg.BreakerThreshold {
			s.openUntil = time.Now().Add(s.cfg.BreakerCooldown)
			s.breakerOpens.Add(1)
			s.consecFails = 0
		}
		s.fallback(ev)
	}
}

// post attempts one event delivery with bounded retries and exponential
// backoff. Any 2xx acknowledges; everything else (refused connections,
// 5xx, timeouts on slow receivers) retries until MaxAttempts. A closing
// sink abandons remaining retries so Close stays prompt.
func (s *Sink) post(ev alert.Event) bool {
	body, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	backoff := s.cfg.Backoff
	for attempt := 1; ; attempt++ {
		resp, err := s.cfg.Client.Post(s.cfg.URL, "application/json", bytes.NewReader(body))
		if err == nil {
			// Drain a bounded prefix so the connection can be reused.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				s.delivered.Add(1)
				return true
			}
		}
		if attempt >= s.cfg.MaxAttempts {
			return false
		}
		s.retries.Add(1)
		select {
		case <-time.After(jitterBackoff(backoff, rand.Int64N)):
		case <-s.closing:
			return false
		}
		backoff *= 2
	}
}

// jitterBackoff spreads one backoff step uniformly over [d/2, d]. Many
// streams share one receiver: when it goes down they all fail together,
// and an unjittered doubling schedule keeps their retries phase-locked —
// every cooldown ends in a synchronized thundering herd that knocks the
// receiver over again. Half-width jitter decorrelates the herd while
// keeping the retry budget (and therefore every existing retry-count
// contract) untouched. randInt64N is rand.Int64N, injected for tests.
func jitterBackoff(d time.Duration, randInt64N func(int64) int64) time.Duration {
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + randInt64N(half+1))
}
