package motif

import "mvg/internal/graph"

// CountBrute computes induced motif counts by explicit enumeration of all
// vertex triples and quadruples, classifying each induced subgraph by its
// edge count and degree sequence. It is O(n⁴) and exists as the reference
// oracle for testing Count; do not use it on graphs beyond a few dozen
// vertices.
func CountBrute(g *graph.Graph) Counts {
	n := g.N()
	var c Counts

	c.M21 = int64(g.M())
	c.M22 = choose2(int64(n)) - c.M21

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			eij := b2i(g.HasEdge(i, j))
			for k := j + 1; k < n; k++ {
				e3 := eij + b2i(g.HasEdge(i, k)) + b2i(g.HasEdge(j, k))
				switch e3 {
				case 3:
					c.M31++
				case 2:
					c.M32++
				case 1:
					c.M33++
				default:
					c.M34++
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				for l := k + 1; l < n; l++ {
					classify4(g, i, j, k, l, &c)
				}
			}
		}
	}
	return c
}

func classify4(g *graph.Graph, a, b, x, y int, c *Counts) {
	vs := [4]int{a, b, x, y}
	var deg [4]int
	edges := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if g.HasEdge(vs[i], vs[j]) {
				edges++
				deg[i]++
				deg[j]++
			}
		}
	}
	maxDeg, minDeg := 0, 4
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	switch edges {
	case 6:
		c.M41++
	case 5:
		c.M42++
	case 4:
		if maxDeg == 3 {
			c.M43++ // tailed triangle: degrees 3,2,2,1
		} else {
			c.M44++ // cycle: degrees 2,2,2,2
		}
	case 3:
		switch {
		case maxDeg == 3:
			c.M45++ // star: 3,1,1,1
		case minDeg == 0:
			c.M47++ // triangle + isolate: 2,2,2,0
		default:
			c.M46++ // path: 2,2,1,1
		}
	case 2:
		if maxDeg == 2 {
			c.M48++ // wedge + isolate: 2,1,1,0
		} else {
			c.M49++ // two edges: 1,1,1,1
		}
	case 1:
		c.M410++
	default:
		c.M411++
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
