// Package motif counts induced graphlets ("motifs") of size two to four in
// undirected graphs — the 11 motifs of Table 1 in the paper, both connected
// and disconnected — and converts them into the normalized motif
// probability distributions (MPDs) the MVG feature extractor consumes.
//
// It plays the role PGD (Ahmed et al., ICDM 2015) plays in the paper: exact
// counts obtained from triangle/clique enumeration over the graph's
// compressed-sparse-row forward ranges combined with combinatorial
// identities, rather than explicit subgraph enumeration. The per-graph cost
// is O(Σ_v d_v²) for the triangle/co-degree passes plus the 4-clique
// enumeration, with small constants on the sparse graphs visibility
// transforms produce because every scan walks contiguous sorted rows.
package motif

import (
	"mvg/internal/buf"
	"mvg/internal/graph"
)

// Counts holds induced occurrence counts for every motif of size ≤ 4,
// using the paper's Table 1 naming. Size-k counts partition the C(n,k)
// vertex subsets of the host graph.
type Counts struct {
	// Size 2.
	M21 int64 // 2-edge
	M22 int64 // 2-node-independent

	// Size 3, connected.
	M31 int64 // 3-triangle
	M32 int64 // 3-path (wedge)
	// Size 3, disconnected.
	M33 int64 // 3-node-1-edge
	M34 int64 // 3-node-independent

	// Size 4, connected.
	M41 int64 // 4-clique
	M42 int64 // 4-chordal-cycle (diamond)
	M43 int64 // 4-tailed-triangle (paw)
	M44 int64 // 4-cycle
	M45 int64 // 4-star (claw)
	M46 int64 // 4-path
	// Size 4, disconnected.
	M47  int64 // 4-node-triangle (triangle + isolate)
	M48  int64 // 4-node-star (wedge + isolate)
	M49  int64 // 4-node-2-edges (two independent edges)
	M410 int64 // 4-node-1-edge (edge + two isolates)
	M411 int64 // 4-node-independent
}

// Names lists the motif labels in the canonical order used by Vector and
// the probability groups.
var Names = []string{
	"M21", "M22",
	"M31", "M32", "M33", "M34",
	"M41", "M42", "M43", "M44", "M45", "M46",
	"M47", "M48", "M49", "M410", "M411",
}

// array returns the 17 counts in canonical Names order — the single
// definition of that order, shared by Vector and AppendProbabilities.
func (c Counts) array() [17]int64 {
	return [17]int64{
		c.M21, c.M22,
		c.M31, c.M32, c.M33, c.M34,
		c.M41, c.M42, c.M43, c.M44, c.M45, c.M46,
		c.M47, c.M48, c.M49, c.M410, c.M411,
	}
}

// Vector returns the 17 counts in canonical Names order.
func (c Counts) Vector() []int64 {
	v := c.array()
	return v[:]
}

// Groups defines the paper's five normalization groups over Names indices:
// {M21,M22}, {M31,M32}, {M33,M34}, {M41..M46}, {M47..M411}. MPDs are
// normalized within each size/connectivity group (Section 3.1).
var Groups = [][]int{
	{0, 1},
	{2, 3},
	{4, 5},
	{6, 7, 8, 9, 10, 11},
	{12, 13, 14, 15, 16},
}

// Probabilities converts counts into the grouped motif probability
// distribution: each group of Vector entries is normalized to sum to one.
// Groups with a zero total yield zero probabilities.
func (c Counts) Probabilities() []float64 {
	return c.AppendProbabilities(make([]float64, 0, len(Names)))
}

// AppendProbabilities appends the grouped motif probability distribution to
// dst and returns it — the allocation-free form of Probabilities used by
// the feature-extraction hot loop.
func (c Counts) AppendProbabilities(dst []float64) []float64 {
	v := c.array()
	base := len(dst)
	for range v {
		dst = append(dst, 0)
	}
	out := dst[base:]
	for _, grp := range Groups {
		var total int64
		for _, i := range grp {
			total += v[i]
		}
		if total == 0 {
			continue
		}
		for _, i := range grp {
			out[i] = float64(v[i]) / float64(total)
		}
	}
	return dst
}

func choose2(n int64) int64 {
	if n < 2 {
		return 0
	}
	return n * (n - 1) / 2
}

func choose3(n int64) int64 {
	if n < 3 {
		return 0
	}
	return n * (n - 1) * (n - 2) / 6
}

func choose4(n int64) int64 {
	if n < 4 {
		return 0
	}
	return n * (n - 1) * (n - 2) * (n - 3) / 24
}

// Counter computes motif counts with reusable scratch arrays (degree
// sequence, per-arc triangle counts, triangle incidence sums and co-degree
// buffers), so per-graph counting performs no allocations after warm-up.
// The zero value is ready for use; a Counter must not be shared between
// goroutines.
type Counter struct {
	deg        []int
	vertTriSum []int64
	arcTri     []int32
	codeg      []int32
	touched    []int32
}

// Count computes exact induced counts of all 11 motifs of size ≤ 4 of g.
// It is the convenience form of Counter.Count with throwaway scratch.
//
// Strategy: a single forward-range triangle enumeration yields per-edge
// triangle counts and direct 4-clique counts; a wedge pass yields co-degree
// pair statistics (non-induced 4-cycles); degree aggregates give
// non-induced stars, paths and paws. Induced counts then follow from the
// standard inclusion–exclusion identities between non-induced and induced
// subgraph counts, and the disconnected motifs from complement identities
// against C(n,3)/C(n,4) totals.
func Count(g *graph.Graph) Counts {
	var ctr Counter
	return ctr.Count(g)
}

// Count computes the motif counts of g in the counter's reusable buffers.
func (ctr *Counter) Count(g *graph.Graph) Counts {
	n64 := int64(g.N())
	m64 := int64(g.M())
	var c Counts

	// ---- Size 2 ----
	c.M21 = m64
	c.M22 = choose2(n64) - m64

	if g.N() == 0 {
		return c
	}

	ctr.deg = g.DegreesInto(ctr.deg)
	deg := ctr.deg

	// Wedges: Σ_v C(d_v, 2).
	var wedges int64
	for _, d := range deg {
		wedges += choose2(int64(d))
	}

	// Triangle pass over the CSR forward ranges: every triangle u<v<w is
	// enumerated exactly once by merge-scanning the two sorted suffixes of
	// rows u and v that lie beyond v. Each match w is found at its absolute
	// positions in both rows, so the per-edge triangle counts tri_e
	// accumulate into a flat arc-indexed array with no intersection-list
	// materialization. 4-cliques are counted directly from each triangle: x
	// completes {u,v,w,x} with x>w iff x appears in all three row suffixes
	// beyond w, a 3-way merge over contiguous memory.
	offs, nbrs := g.CSR() // hoisted flat rows: no per-access method call
	fwd := g.Forward()
	ctr.arcTri = buf.GrowZero(ctr.arcTri, len(nbrs))
	arcTri := ctr.arcTri // tri_e at the forward-arc position of each edge
	var k4 int64
	for u := 0; u < g.N(); u++ {
		end := int(offs[u+1])
		for p := int(fwd[u]); p < end; p++ {
			v := nbrs[p]
			su := nbrs[p+1 : end]    // row-u entries > v
			pv := int(fwd[v])        // row-v forward start
			sv := nbrs[pv:offs[v+1]] // row-v entries > v
			i, j := 0, 0
			for i < len(su) && j < len(sv) {
				switch a, b := su[i], sv[j]; {
				case a < b:
					i++
				case a > b:
					j++
				default: // triangle (u, v, w) with w = a
					w := a
					arcTri[p]++
					arcTri[p+1+i]++
					arcTri[pv+j]++
					k4 += int64(count3(su[i+1:], sv[j+1:], nbrs[fwd[w]:offs[w+1]]))
					i++
					j++
				}
			}
		}
	}

	// Per-edge aggregation: Σ tri_e, Σ C(tri_e,2), per-vertex triangle
	// incidence sums and non-induced P4s, all from the arc-indexed counts.
	var (
		triTotal3   int64 // Σ_e tri_e = 3 × #triangles
		triPairsSum int64 // Σ_e C(tri_e, 2)
		p4Non       int64 // Σ_e [(d_u-1)(d_v-1) - tri_e]
	)
	ctr.vertTriSum = buf.GrowZero(ctr.vertTriSum, g.N())
	vertTriSum := ctr.vertTriSum // Σ over incident edges of tri_e (= 2·tri_v)
	for u := 0; u < g.N(); u++ {
		for p := fwd[u]; p < offs[u+1]; p++ {
			v := nbrs[p]
			te := int64(arcTri[p])
			triTotal3 += te
			triPairsSum += choose2(te)
			vertTriSum[u] += te
			vertTriSum[v] += te
			p4Non += int64(deg[u]-1)*int64(deg[v]-1) - te
		}
	}
	tri := triTotal3 / 3

	// Non-induced paws: Σ_triangles (d_u + d_v + d_w - 6)
	//                 = Σ_v tri_v·d_v - 6·tri, with tri_v = vertTriSum[v]/2.
	var pawNon int64
	for v, d := range deg {
		pawNon += vertTriSum[v] / 2 * int64(d)
	}
	pawNon -= 6 * tri

	// Non-induced claws: Σ_v C(d_v, 3).
	var clawNon int64
	for _, d := range deg {
		clawNon += choose3(int64(d))
	}

	// Non-induced 4-cycles via co-degrees: each cycle has two diagonals.
	c4Doubled := ctr.codegreePairSum(g)
	c4Non := c4Doubled / 2

	// ---- Size 3 induced ----
	c.M31 = tri
	c.M32 = wedges - 3*tri
	c.M33 = m64*(n64-2) - 3*c.M31 - 2*c.M32
	c.M34 = choose3(n64) - c.M31 - c.M32 - c.M33

	// ---- Size 4 connected induced ----
	diamond := triPairsSum - 6*k4
	cycle4 := c4Non - diamond - 3*k4
	paw := pawNon - 4*diamond - 12*k4
	claw := clawNon - paw - 2*diamond - 4*k4
	path4 := p4Non - 2*paw - 4*cycle4 - 6*diamond - 12*k4

	c.M41 = k4
	c.M42 = diamond
	c.M43 = paw
	c.M44 = cycle4
	c.M45 = claw
	c.M46 = path4

	// ---- Size 4 disconnected induced ----
	// (triangle, external vertex) pairs, weighted by triangles per 4-set.
	c.M47 = tri*(n64-3) - paw - 2*diamond - 4*k4
	// (induced wedge, external vertex) pairs.
	c.M48 = c.M32*(n64-3) - 3*claw - 2*path4 - 2*paw - 4*cycle4 - 2*diamond
	// Vertex-disjoint edge pairs.
	c.M49 = choose2(m64) - wedges - path4 - 2*cycle4 - paw - 2*diamond - 3*k4
	// (edge, two external vertices): Σ_{4-sets} induced edge count.
	c.M410 = m64*choose2(n64-2) -
		6*k4 - 5*diamond - 4*(cycle4+paw) -
		3*(claw+path4+c.M47) - 2*(c.M48+c.M49)
	c.M411 = choose4(n64) - c.M41 - c.M42 - c.M43 - c.M44 - c.M45 - c.M46 -
		c.M47 - c.M48 - c.M49 - c.M410

	return c
}

// count3 returns the size of the 3-way intersection of sorted int32 slices
// by advancing the pointer(s) at the current minimum.
func count3(a, b, c []int32) int {
	i, j, k, cnt := 0, 0, 0, 0
	for i < len(a) && j < len(b) && k < len(c) {
		x, y, z := a[i], b[j], c[k]
		if x == y && y == z {
			cnt++
			i++
			j++
			k++
			continue
		}
		m := min(x, min(y, z))
		if x == m {
			i++
		}
		if y == m {
			j++
		}
		if z == m {
			k++
		}
	}
	return cnt
}

// codegreePairSum returns Σ over unordered vertex pairs {a,c} of
// C(codeg(a,c), 2), where codeg is the number of common neighbours. Each
// non-induced 4-cycle is counted exactly twice (once per diagonal). The
// computation iterates wedges per low endpoint with an O(n) scratch array.
// Because CSR rows are sorted ascending, the wedge tips c > a form a suffix
// of each row, so the inner scan walks backwards and stops at the first
// tip ≤ a instead of filtering the whole row.
func (ctr *Counter) codegreePairSum(g *graph.Graph) int64 {
	n := g.N()
	offs, nbrs := g.CSR()
	ctr.codeg = buf.GrowZero(ctr.codeg, n)
	codeg := ctr.codeg
	touched := ctr.touched[:0]
	defer func() { ctr.touched = touched }()
	var sum int64
	for a := 0; a < n; a++ {
		a32 := int32(a)
		touched = touched[:0]
		for _, vi := range nbrs[offs[a]:offs[a+1]] {
			rv := nbrs[offs[vi]:offs[vi+1]]
			for j := len(rv) - 1; j >= 0; j-- {
				ci := rv[j]
				if ci <= a32 {
					break
				}
				if codeg[ci] == 0 {
					touched = append(touched, ci)
				}
				codeg[ci]++
			}
		}
		for _, ci := range touched {
			sum += choose2(int64(codeg[ci]))
			codeg[ci] = 0
		}
	}
	return sum
}
