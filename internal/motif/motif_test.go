package motif

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mvg/internal/graph"
	"mvg/internal/visibility"
)

func randomGraph(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = g.AddEdge(i, j)
			}
		}
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = g.AddEdge(i, j)
		}
	}
	return g
}

func TestCountEmptyAndTiny(t *testing.T) {
	c := Count(graph.New(0))
	if c != (Counts{}) {
		t.Errorf("empty graph counts = %+v", c)
	}
	c = Count(graph.New(1))
	if c != (Counts{}) {
		t.Errorf("single vertex counts = %+v", c)
	}
	c = Count(graph.New(2))
	if c.M22 != 1 || c.M21 != 0 {
		t.Errorf("two isolated vertices: %+v", c)
	}
}

func TestCountTriangle(t *testing.T) {
	c := Count(complete(3))
	if c.M21 != 3 || c.M22 != 0 || c.M31 != 1 || c.M32 != 0 {
		t.Errorf("K3 counts wrong: %+v", c)
	}
}

func TestCountK4(t *testing.T) {
	c := Count(complete(4))
	if c.M41 != 1 {
		t.Errorf("K4 clique count = %d, want 1", c.M41)
	}
	if c.M31 != 4 { // C(4,3) triangles
		t.Errorf("K4 triangle count = %d, want 4", c.M31)
	}
	for _, v := range []int64{c.M42, c.M43, c.M44, c.M45, c.M46, c.M47, c.M48, c.M49, c.M410, c.M411} {
		if v != 0 {
			t.Errorf("K4 should have only cliques: %+v", c)
		}
	}
}

func TestCountK5(t *testing.T) {
	c := Count(complete(5))
	if c.M41 != 5 { // C(5,4)
		t.Errorf("K5 4-clique count = %d, want 5", c.M41)
	}
	if c.M31 != 10 {
		t.Errorf("K5 triangle count = %d, want 10", c.M31)
	}
}

func TestCountStar(t *testing.T) {
	// Star with center 0 and 4 leaves: claws = C(4,3) = 4.
	g := graph.New(5)
	for i := 1; i < 5; i++ {
		_ = g.AddEdge(0, i)
	}
	c := Count(g)
	if c.M45 != 4 {
		t.Errorf("star claw count = %d, want 4", c.M45)
	}
	if c.M31 != 0 || c.M41 != 0 || c.M44 != 0 {
		t.Errorf("star has unexpected motifs: %+v", c)
	}
	// Wedges: C(4,2) = 6.
	if c.M32 != 6 {
		t.Errorf("star wedge count = %d, want 6", c.M32)
	}
}

func TestCountCycle4(t *testing.T) {
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(3, 0)
	c := Count(g)
	if c.M44 != 1 {
		t.Errorf("C4 cycle count = %d, want 1", c.M44)
	}
	if c.M41 != 0 || c.M42 != 0 || c.M43 != 0 || c.M45 != 0 || c.M46 != 0 {
		t.Errorf("C4 unexpected connected motifs: %+v", c)
	}
}

func TestCountDiamondPawPath(t *testing.T) {
	// Diamond: K4 minus one edge.
	g := complete(4)
	edges := g.Edges()
	d := graph.New(4)
	for _, e := range edges {
		if e[0] == 0 && e[1] == 1 {
			continue
		}
		_ = d.AddEdge(e[0], e[1])
	}
	c := Count(d)
	if c.M42 != 1 {
		t.Errorf("diamond count = %d, want 1 (%+v)", c.M42, c)
	}

	// Paw: triangle 0-1-2 plus pendant 3 on 0.
	p := graph.New(4)
	_ = p.AddEdge(0, 1)
	_ = p.AddEdge(1, 2)
	_ = p.AddEdge(0, 2)
	_ = p.AddEdge(0, 3)
	c = Count(p)
	if c.M43 != 1 {
		t.Errorf("paw count = %d, want 1 (%+v)", c.M43, c)
	}

	// Path on 4 vertices.
	q := graph.New(4)
	_ = q.AddEdge(0, 1)
	_ = q.AddEdge(1, 2)
	_ = q.AddEdge(2, 3)
	c = Count(q)
	if c.M46 != 1 {
		t.Errorf("P4 count = %d, want 1 (%+v)", c.M46, c)
	}
}

func TestCountDisconnectedMotifs(t *testing.T) {
	// Triangle plus isolated vertex.
	g := graph.New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(0, 2)
	c := Count(g)
	if c.M47 != 1 {
		t.Errorf("triangle+isolate = %d, want 1 (%+v)", c.M47, c)
	}

	// Two independent edges.
	h := graph.New(4)
	_ = h.AddEdge(0, 1)
	_ = h.AddEdge(2, 3)
	c = Count(h)
	if c.M49 != 1 {
		t.Errorf("2K2 = %d, want 1 (%+v)", c.M49, c)
	}

	// Wedge plus isolate.
	w := graph.New(4)
	_ = w.AddEdge(0, 1)
	_ = w.AddEdge(1, 2)
	c = Count(w)
	if c.M48 != 1 {
		t.Errorf("wedge+isolate = %d, want 1 (%+v)", c.M48, c)
	}

	// Single edge and two isolates.
	e := graph.New(4)
	_ = e.AddEdge(0, 1)
	c = Count(e)
	if c.M410 != 1 {
		t.Errorf("edge+2 isolates = %d, want 1 (%+v)", c.M410, c)
	}

	// Empty on 4.
	c = Count(graph.New(4))
	if c.M411 != 1 {
		t.Errorf("empty 4-set = %d, want 1 (%+v)", c.M411, c)
	}
}

func TestCountMatchesBruteRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		p := 0.05 + rng.Float64()*0.5
		g := randomGraph(n, p, rng)
		return Count(g) == CountBrute(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCountMatchesBruteVisibilityGraphs(t *testing.T) {
	// Visibility graphs are the actual production inputs; verify on those.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(24)
		series := make([]float64, n)
		for i := range series {
			series[i] = rng.NormFloat64()
		}
		vg, err := visibility.VG(series)
		if err != nil {
			return false
		}
		hvg, err := visibility.HVG(series)
		if err != nil {
			return false
		}
		return Count(vg) == CountBrute(vg) && Count(hvg) == CountBrute(hvg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCountPartitionProperty(t *testing.T) {
	// Size-k counts must partition C(n,k) subsets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := randomGraph(n, rng.Float64()*0.6, rng)
		c := Count(g)
		n64 := int64(n)
		if c.M21+c.M22 != choose2(n64) {
			return false
		}
		if c.M31+c.M32+c.M33+c.M34 != choose3(n64) {
			return false
		}
		sum4 := c.M41 + c.M42 + c.M43 + c.M44 + c.M45 + c.M46 +
			c.M47 + c.M48 + c.M49 + c.M410 + c.M411
		return sum4 == choose4(n64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCountNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := randomGraph(n, rng.Float64(), rng)
		for _, v := range Count(g).Vector() {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestProbabilitiesGroupsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(25, 0.3, rng)
	p := Count(g).Probabilities()
	for gi, grp := range Groups {
		sum := 0.0
		for _, i := range grp {
			if p[i] < 0 || p[i] > 1 {
				t.Errorf("probability out of range: p[%d]=%v", i, p[i])
			}
			sum += p[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("group %d sums to %v", gi, sum)
		}
	}
}

func TestProbabilitiesZeroGroups(t *testing.T) {
	// K3 has no 4-vertex subsets at all: groups 4 and 5 must be all zero.
	p := Count(complete(3)).Probabilities()
	for _, i := range append(Groups[3], Groups[4]...) {
		if p[i] != 0 {
			t.Errorf("expected zero probability for index %d, got %v", i, p[i])
		}
	}
}

func TestNamesAndVectorAligned(t *testing.T) {
	if len(Names) != 17 {
		t.Fatalf("Names has %d entries", len(Names))
	}
	c := Counts{M21: 1, M22: 2, M31: 3, M32: 4, M33: 5, M34: 6, M41: 7,
		M42: 8, M43: 9, M44: 10, M45: 11, M46: 12, M47: 13, M48: 14,
		M49: 15, M410: 16, M411: 17}
	v := c.Vector()
	for i, x := range v {
		if x != int64(i+1) {
			t.Errorf("Vector()[%d] = %d, want %d", i, x, i+1)
		}
	}
	// Every index appears in exactly one group.
	seen := map[int]int{}
	for _, grp := range Groups {
		for _, i := range grp {
			seen[i]++
		}
	}
	if len(seen) != 17 {
		t.Errorf("groups cover %d indices, want 17", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d appears %d times in groups", i, c)
		}
	}
}
