package mvg

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// streamCfg is the canonical streaming configuration: preprocessing off
// (structure-preserving at the bit level), so the incremental path is
// active. See docs/streaming.md.
func streamCfg(scale, graphs string) Config {
	return Config{Scale: scale, Graphs: graphs, NoDetrend: true, NoZNormalize: true}
}

// adversarialStreams returns the series shapes the streaming determinism
// contract is pinned on, each generated at the requested length.
func adversarialStreams(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	monotone := make([]float64, n)
	constant := make([]float64, n)
	sawtooth := make([]float64, n)
	walk := make([]float64, n)
	level := 0.0
	for i := 0; i < n; i++ {
		monotone[i] = float64(i)
		constant[i] = 2.5
		sawtooth[i] = float64(i % 7)
		level += rng.NormFloat64()
		walk[i] = level
	}
	return map[string][]float64{
		"monotone": monotone,
		"constant": constant,
		"sawtooth": sawtooth,
		"walk":     walk,
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// driveStream pushes series through a stream of the given geometry and, on
// every hop, compares Features against Pipeline.Extract on the
// materialized window — the bit-identical determinism contract.
func driveStream(t *testing.T, p *Pipeline, series []float64, windowLen, hop int, wantIncremental bool) {
	t.Helper()
	s, err := p.NewStream(windowLen, hop)
	if err != nil {
		t.Fatal(err)
	}
	if s.Incremental() != wantIncremental {
		t.Fatalf("Incremental() = %v, want %v", s.Incremental(), wantIncremental)
	}
	hops := 0
	for i, x := range series {
		ready, err := s.Push(x)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if wantReady := i+1 >= windowLen && (i+1-windowLen)%hop == 0; ready != wantReady {
			t.Fatalf("push %d: ready = %v, want %v", i, ready, wantReady)
		}
		if !ready {
			continue
		}
		hops++
		got, err := s.Features()
		if err != nil {
			t.Fatal(err)
		}
		window := series[i+1-windowLen : i+1]
		want, err := p.Extract(context.Background(), [][]float64{window})
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got, want[0]) {
			t.Fatalf("window ending at %d: stream features differ from batch extraction\n got %v\nwant %v", i, got, want[0])
		}
	}
	if hops == 0 {
		t.Fatalf("series of %d samples produced no hops at window %d", len(series), windowLen)
	}
}

// TestStreamMatchesBatchSweep is the differential sweep of the acceptance
// criteria: window lengths {16, 64, 512} × hops {1, 8, windowLen} ×
// adversarial series, on the incremental streaming configuration.
func TestStreamMatchesBatchSweep(t *testing.T) {
	p, err := NewPipeline(streamCfg("uvg", "both"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, windowLen := range []int{16, 64, 512} {
		extra := 4 * windowLen
		if windowLen == 512 {
			extra = 48 // bound test time: 48 slides of the large window
		}
		for name, series := range adversarialStreams(windowLen+extra, int64(windowLen)) {
			for _, hop := range []int{1, 8, windowLen} {
				if hop > windowLen {
					continue
				}
				t.Run(name, func(t *testing.T) {
					driveStream(t, p, series, windowLen, hop, true)
				})
			}
		}
	}
}

// TestStreamMatchesBatchModes pins the contract across scale and graph
// modes, incremental (preprocessing off) and fallback (default
// preprocessing, multiscale) alike.
func TestStreamMatchesBatchModes(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		incremental bool
	}{
		{"uvg-vg-only", streamCfg("uvg", "vg"), true},
		{"uvg-hvg-only", streamCfg("uvg", "hvg"), true},
		{"mvg-incremental", streamCfg("mvg", "both"), true},
		{"amvg-fallback", streamCfg("amvg", "both"), false},
		{"default-preprocessing-fallback", Config{}, false},
		{"znorm-only-fallback", Config{Scale: "uvg", NoDetrend: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipeline(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			windowLen := 64
			if tc.cfg.Scale == "amvg" || tc.cfg.Scale == "" || tc.cfg.Scale == "mvg" {
				windowLen = 96 // deep enough for at least one pyramid level
			}
			for name, series := range adversarialStreams(3*windowLen, 11) {
				for _, hop := range []int{1, 5, windowLen} {
					t.Run(name, func(t *testing.T) {
						driveStream(t, p, series, windowLen, hop, tc.incremental)
					})
				}
			}
		})
	}
}

func TestStreamGeometryValidation(t *testing.T) {
	p, err := NewPipeline(streamCfg("uvg", "both"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var ce *ConfigError
	if _, err := p.NewStream(1, 1); !errors.As(err, &ce) || !errors.Is(err, ErrBadConfig) {
		t.Fatalf("NewStream(1,1) err = %v, want *ConfigError", err)
	}
	if _, err := p.NewStream(16, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("NewStream(16,0) err = %v, want ErrBadConfig", err)
	}
	if _, err := p.NewStream(16, 17); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("NewStream(16,17) err = %v, want ErrBadConfig", err)
	}
	// amvg needs a window long enough to produce at least one halved scale.
	pa, err := NewPipeline(Config{Scale: "amvg"})
	if err != nil {
		t.Fatal(err)
	}
	defer pa.Close()
	if _, err := pa.NewStream(16, 1); !errors.Is(err, ErrSeriesTooShort) {
		t.Fatalf("amvg NewStream(16,1) err = %v, want ErrSeriesTooShort", err)
	}
}

func TestStreamNotReadyAndNonFinite(t *testing.T) {
	p, err := NewPipeline(streamCfg("uvg", "both"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, err := p.NewStream(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Features(); !errors.Is(err, ErrStreamNotReady) {
		t.Fatalf("Features on empty stream: %v, want ErrStreamNotReady", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Push(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := s.Push(bad); !errors.Is(err, ErrNonFiniteSample) {
			t.Fatalf("Push(%v) err = %v, want ErrNonFiniteSample", bad, err)
		}
	}
	if s.Pushed() != 5 {
		t.Fatalf("rejected samples advanced the stream: Pushed = %d, want 5", s.Pushed())
	}
	// The stream stays usable and consistent after rejected pushes.
	for i := 5; i < 12; i++ {
		if _, err := s.Push(float64(i) * 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Features(); err != nil {
		t.Fatalf("Features after recovery: %v", err)
	}
}

func TestStreamPushBatchAndReset(t *testing.T) {
	p, err := NewPipeline(streamCfg("uvg", "both"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, err := p.NewStream(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	series := adversarialStreams(64, 3)["walk"]
	hops, err := s.PushBatch(series)
	if err != nil {
		t.Fatal(err)
	}
	if want := (64-16)/4 + 1; hops != want {
		t.Fatalf("PushBatch hops = %d, want %d", hops, want)
	}
	first, err := s.Features()
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Pushed() != 0 || s.Ready() {
		t.Fatalf("Reset left Pushed=%d Ready=%v", s.Pushed(), s.Ready())
	}
	if _, err := s.PushBatch(series); err != nil {
		t.Fatal(err)
	}
	again, err := s.Features()
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(first, again) {
		t.Fatal("replay after Reset produced different features")
	}
}

// TestStreamPredictMatchesModel trains a tiny model and checks streaming
// predictions equal Model.PredictBatch on the materialized windows.
func TestStreamPredictMatchesModel(t *testing.T) {
	p, err := NewPipeline(streamCfg("uvg", "both"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rng := rand.New(rand.NewSource(17))
	const n, length = 24, 32
	series := make([][]float64, n)
	labels := make([]int, n)
	for i := range series {
		ts := make([]float64, length)
		level := 0.0
		for k := range ts {
			level += rng.NormFloat64()
			ts[k] = level
			if i%2 == 1 {
				ts[k] += 4 * math.Sin(float64(k)/3)
			}
		}
		series[i] = ts
		labels[i] = i % 2
	}
	model, err := p.Train(context.Background(), series, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := model.NewStream(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.WindowLen() != length {
		t.Fatalf("WindowLen = %d, want training length %d", s.WindowLen(), length)
	}
	stream := adversarialStreams(3*length, 23)["walk"]
	for i, x := range stream {
		ready, err := s.Push(x)
		if err != nil {
			t.Fatal(err)
		}
		if !ready {
			continue
		}
		class, proba, err := s.Predict(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		window := stream[i+1-length : i+1]
		wantClass, err := model.PredictBatch(context.Background(), [][]float64{window})
		if err != nil {
			t.Fatal(err)
		}
		wantProba, err := model.PredictProba(context.Background(), [][]float64{window})
		if err != nil {
			t.Fatal(err)
		}
		if class != wantClass[0] || !bitsEqual(proba, wantProba[0]) {
			t.Fatalf("window ending at %d: stream predict (%d, %v) != batch (%d, %v)",
				i, class, proba, wantClass[0], wantProba[0])
		}
	}
	// Feature-only streams reject Predict.
	fs, err := p.NewStream(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PushBatch(stream[:16]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Predict(context.Background()); err == nil {
		t.Fatal("Predict on a feature-only stream succeeded, want error")
	}
	// Cancelled contexts short-circuit.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Predict(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Predict with cancelled ctx = %v, want context.Canceled", err)
	}
}

// FuzzStreamAgainstBatch differentially fuzzes the streaming engine
// against batch extraction: random series, window lengths and hops must
// produce bit-identical feature vectors on every hop. The nightly fuzz
// workflow runs this target for 5 minutes per night.
func FuzzStreamAgainstBatch(f *testing.F) {
	f.Add([]byte{16, 1, 0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150, 160, 170})
	f.Add([]byte{4, 2, 1, 1, 1, 1, 1, 1, 200, 3})
	f.Add([]byte{8, 3, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		windowLen := 2 + int(data[0])%31 // 2..32
		hop := 1 + int(data[1])%windowLen
		samples := data[2:]
		if len(samples) > 256 {
			samples = samples[:256]
		}
		if len(samples) < windowLen {
			t.Skip()
		}
		series := make([]float64, len(samples))
		for i, b := range samples {
			series[i] = float64(int(b)-128) / 8
		}
		p, err := NewPipeline(streamCfg("uvg", "both"))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		s, err := p.NewStream(windowLen, hop)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range series {
			ready, err := s.Push(x)
			if err != nil {
				t.Fatal(err)
			}
			if !ready {
				continue
			}
			got, err := s.Features()
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Extract(context.Background(), [][]float64{series[i+1-windowLen : i+1]})
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(got, want[0]) {
				t.Fatalf("windowLen=%d hop=%d window ending at %d: stream != batch", windowLen, hop, i)
			}
		}
	})
}
