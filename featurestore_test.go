package mvg

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// storeLabels makes alternating two-class token labels for n rows.
func storeLabels(n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = []string{"sine", "noise"}[i%2]
	}
	return labels
}

// TestExtractToStoreMatchesExtract pins the store round trip: features
// written chunk by chunk through the bulk path read back bit-identical to
// a direct in-memory Extract of the same batch, with the manifest's
// schema (names, class tokens, series length) intact.
func TestExtractToStoreMatchesExtract(t *testing.T) {
	series := batchSeries(18, 128, 3)
	labels := storeLabels(18)
	p, err := NewPipeline(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want, err := p.Extract(context.Background(), series)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var seen []int
	res, err := p.ExtractToStore(context.Background(), SliceSource(series, labels, 5), StoreOptions{
		Dir:      dir,
		Dataset:  "toy",
		Progress: func(chunk, rows int, skipped bool) { seen = append(seen, rows) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 18 || res.Chunks != 4 || res.Extracted != 4 || res.Skipped != 0 {
		t.Fatalf("result %+v", res)
	}
	if !reflect.DeepEqual(seen, []int{5, 5, 5, 3}) {
		t.Fatalf("progress rows %v", seen)
	}

	s, err := OpenFeatureStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 18 || s.NumChunks() != 4 || s.SeriesLen() != 128 || s.Dataset() != "toy" {
		t.Fatalf("store shape: rows=%d chunks=%d len=%d dataset=%q", s.Rows(), s.NumChunks(), s.SeriesLen(), s.Dataset())
	}
	if !reflect.DeepEqual(s.FeatureNames(), p.FeatureNames(128)) {
		t.Fatal("store feature names differ from the pipeline's")
	}
	if !reflect.DeepEqual(s.ClassNames(), []string{"sine", "noise"}) {
		t.Fatalf("class names %v, want first-seen [sine noise]", s.ClassNames())
	}
	X, ids, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, X)
	for i, id := range ids {
		if id != i%2 {
			t.Fatalf("row %d label id %d, want %d", i, id, i%2)
		}
	}

	// A resumed rerun verifies every shard and extracts nothing.
	res, err = p.ExtractToStore(context.Background(), SliceSource(series, labels, 5), StoreOptions{
		Dir: dir, Dataset: "toy", Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extracted != 0 || res.Skipped != 4 {
		t.Fatalf("resume extracted/skipped = %d/%d, want 0/4", res.Extracted, res.Skipped)
	}
}

// TestTrainFromStoreMatchesTrain: training from precomputed features must
// produce a model whose predictions are bit-identical to Pipeline.Train
// on the raw series — the store is a cache, not an approximation.
func TestTrainFromStoreMatchesTrain(t *testing.T) {
	train, labelIDs := predictableDataset(t, 31)
	test, _ := predictableDataset(t, 32)
	tokens := make([]string, len(labelIDs))
	for i, id := range labelIDs {
		tokens[i] = []string{"sine", "noise"}[id] // alternates 0,1 so first-seen ids match
	}
	cfg := Config{Classifier: "rf", Folds: 2, Seed: 1, Workers: 2}
	ctx := context.Background()

	p, err := NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	direct, err := p.Train(ctx, train, labelIDs, 2)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, err := p.ExtractToStore(ctx, SliceSource(train, tokens, 7), StoreOptions{Dir: dir, Dataset: "pred"}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFeatureStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromStore, err := s.Train(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fromStore.Pipeline().Close()

	pd, err := direct.PredictProba(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := fromStore.PredictProba(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, pd, ps)
}

// TestTrainFromStoreConfigMismatch: a store only trains under the
// extraction config that built it; classifier fields are free to vary.
func TestTrainFromStoreConfigMismatch(t *testing.T) {
	train, labelIDs := predictableDataset(t, 33)
	tokens := make([]string, len(labelIDs))
	for i, id := range labelIDs {
		tokens[i] = fmt.Sprint(id)
	}
	p, err := NewPipeline(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	dir := t.TempDir()
	if _, err := p.ExtractToStore(context.Background(), SliceSource(train, tokens, 8), StoreOptions{Dir: dir, Dataset: "pred"}); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFeatureStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Train(context.Background(), Config{Extended: true, Folds: 2, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "extracted under config") {
		t.Fatalf("mismatched extraction config error = %v", err)
	}
	// Different classifier settings are fine: same feature space.
	p2, err := NewPipeline(Config{Classifier: "rf", Folds: 2, Seed: 7, Oversample: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, err := p2.TrainFromStore(context.Background(), s); err != nil {
		t.Fatalf("classifier-only config change should train from the store: %v", err)
	}
}

// TestOpenFeatureStoreErrors: missing and incomplete stores are rejected
// with actionable messages.
func TestOpenFeatureStoreErrors(t *testing.T) {
	if _, err := OpenFeatureStore(t.TempDir()); err == nil {
		t.Fatal("empty dir should not open")
	}
}

// TestExtractionConfigDefaults: Configs that extract identically must
// hash identically, or resume and train-from-store would refuse valid
// stores over spelled-out defaults.
func TestExtractionConfigDefaults(t *testing.T) {
	a, err := extractionConfigJSON(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := extractionConfigJSON(Config{Scale: "mvg", Graphs: "both", Features: "all", Tau: 15, Classifier: "stack", Workers: 9})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("default-equivalent configs disagree:\n%s\n%s", a, b)
	}
	n1, _ := extractionConfigJSON(Config{Tau: -5})
	n2, _ := extractionConfigJSON(Config{Tau: -1})
	if string(n1) != string(n2) {
		t.Fatal("all negative Tau values should canonicalize identically")
	}
	if string(a) == string(n1) {
		t.Fatal("no-threshold config should hash differently from the default")
	}
}

// TestStoreSourcesFromReaders: the UCR and NDJSON source constructors
// feed ExtractToStore end to end.
func TestStoreSourcesFromReaders(t *testing.T) {
	series := batchSeries(6, 96, 9)
	var ucrText, ndjson strings.Builder
	for i, s := range series {
		fmt.Fprintf(&ucrText, "%d", i%2)
		ndjson.WriteString(fmt.Sprintf(`{"label": %d, "series": [`, i%2))
		for j, v := range s {
			fmt.Fprintf(&ucrText, ",%g", v)
			if j > 0 {
				ndjson.WriteString(",")
			}
			fmt.Fprintf(&ndjson, "%g", v)
		}
		ucrText.WriteString("\n")
		ndjson.WriteString("]}\n")
	}
	p, err := NewPipeline(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for name, src := range map[string]SeriesSource{
		"ucr":    UCRSource(strings.NewReader(ucrText.String()), "toy.txt", 4),
		"ndjson": NDJSONSource(strings.NewReader(ndjson.String()), "toy.ndjson", 4),
	} {
		res, err := p.ExtractToStore(context.Background(), src, StoreOptions{Dir: t.TempDir(), Dataset: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rows != 6 || res.Chunks != 2 {
			t.Fatalf("%s: rows=%d chunks=%d", name, res.Rows, res.Chunks)
		}
	}
}
