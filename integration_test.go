package mvg

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mvg/internal/synth"
	"mvg/internal/ucr"
)

// TestDiskPipelineRoundTrip exercises the full on-disk workflow the CLI
// tools expose: generate a dataset, write it in UCR format, read it back,
// train, save the model, reload it, and score — everything a downstream
// user would chain together.
func TestDiskPipelineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fam, err := synth.ByName("WarpedShapes")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(5)
	trainPath := filepath.Join(dir, fam.Name+"_TRAIN")
	testPath := filepath.Join(dir, fam.Name+"_TEST")
	if err := train.WriteFile(trainPath); err != nil {
		t.Fatal(err)
	}
	if err := test.WriteFile(testPath); err != nil {
		t.Fatal(err)
	}

	trainBack, testBack, err := ucr.ReadPair(trainPath, testPath)
	if err != nil {
		t.Fatal(err)
	}
	if trainBack.Len() != train.Len() || testBack.Len() != test.Len() {
		t.Fatalf("round trip lost samples: %d/%d", trainBack.Len(), testBack.Len())
	}

	model, err := trainOnce(trainBack.Series, trainBack.Labels, trainBack.Classes(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	errRate, err := model.ErrorRate(context.Background(), testBack.Series, testBack.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if errRate > 0.3 {
		t.Errorf("disk round-trip error rate = %v", errRate)
	}

	// Model persistence through the filesystem.
	modelPath := filepath.Join(dir, "model.bin")
	f, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	loaded, err := LoadModel(g)
	if err != nil {
		t.Fatal(err)
	}
	errRate2, err := loaded.ErrorRate(context.Background(), testBack.Series, testBack.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if errRate2 != errRate {
		t.Errorf("reloaded model scores %v, original %v", errRate2, errRate)
	}
}
