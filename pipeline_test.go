package mvg

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestPipelineMatchesFreeFunctions pins the redesign's compatibility
// contract: a Pipeline's output is bit-identical to the deprecated
// per-call free functions, across worker counts and across repeated calls
// on the same (warm) pipeline.
func TestPipelineMatchesFreeFunctions(t *testing.T) {
	series := batchSeries(24, 192, 11)
	ref, names, err := extractOnce(series, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		p, err := NewPipeline(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for call := 0; call < 3; call++ { // repeated calls hit warm scratch
			X, err := p.Extract(context.Background(), series)
			if err != nil {
				t.Fatalf("workers=%d call %d: %v", workers, call, err)
			}
			requireBitIdentical(t, ref, X)
		}
		if got := p.FeatureNames(len(series[0])); len(got) != len(names) {
			t.Fatalf("FeatureNames width %d vs %d", len(got), len(names))
		}
		if p.NumFeatures(len(series[0])) != len(names) {
			t.Fatalf("NumFeatures = %d, want %d", p.NumFeatures(len(series[0])), len(names))
		}
		p.Close()
	}
}

// TestPipelineTrainMatchesFreeTrain: the pipeline's Train produces a model
// whose predictions match the deprecated free Train bit for bit.
func TestPipelineTrainMatchesFreeTrain(t *testing.T) {
	train, labels := predictableDataset(t, 21)
	test, _ := predictableDataset(t, 22)
	ctx := context.Background()

	p, err := NewPipeline(Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	m1, err := p.Train(ctx, train, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := trainOnce(train, labels, 2, Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m1.PredictProba(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.PredictProba(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, p1, p2)
	if m1.Pipeline() != p {
		t.Error("model not bound to its training pipeline")
	}
}

// TestEmptyBatchTyped is the regression test for the empty-batch panic:
// zero-length input must return ErrShapeMismatch from every batch entry
// point, not index series[0].
func TestEmptyBatchTyped(t *testing.T) {
	ctx := context.Background()

	if _, _, err := extractOnce(nil, Config{}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("extractOnce(nil) = %v, want ErrShapeMismatch", err)
	}
	if _, _, err := extractOnce([][]float64{}, Config{}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("extractOnce(empty) = %v, want ErrShapeMismatch", err)
	}

	p, err := NewPipeline(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Extract(ctx, nil); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Pipeline.Extract(nil) = %v, want ErrShapeMismatch", err)
	}
	if _, err := p.Train(ctx, nil, nil, 2); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Pipeline.Train(nil) = %v, want ErrShapeMismatch", err)
	}
	var se *ShapeError
	_, err = p.Extract(ctx, [][]float64{})
	if !errors.As(err, &se) || se.Got != 0 {
		t.Errorf("empty batch error = %#v, want *ShapeError with Got=0", err)
	}
}

// TestTypedErrorsIsAs walks the public surface asserting both errors.Is
// (sentinel matching) and errors.As (structured extraction) for every
// typed error.
func TestTypedErrorsIsAs(t *testing.T) {
	ctx := context.Background()

	// ErrBadConfig / *ConfigError, eagerly at NewPipeline.
	for _, cfg := range []Config{
		{Scale: "nope"}, {Graphs: "nope"}, {Features: "nope"}, {Classifier: "nope"},
	} {
		_, err := NewPipeline(cfg)
		if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("NewPipeline(%+v) = %v, want ErrBadConfig", cfg, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field == "" || ce.Value != "nope" {
			t.Fatalf("NewPipeline(%+v) error %#v, want *ConfigError naming the field", cfg, err)
		}
	}
	// The deprecated wrappers surface the same typed errors.
	if _, _, err := extractOnce(nil, Config{Scale: "nope"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("wrapper config error = %v, want ErrBadConfig", err)
	}

	p, err := NewPipeline(Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// ErrSeriesTooShort through Extract (wrapped by the per-series job): a
	// one-point series cannot form a graph, and under AMVG a series must
	// exceed 2τ points to yield any scale at all.
	_, err = p.Extract(ctx, [][]float64{{1}})
	if !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("one-point series error = %v, want ErrSeriesTooShort", err)
	}
	amvg, err := NewPipeline(Config{Scale: "amvg"})
	if err != nil {
		t.Fatal(err)
	}
	defer amvg.Close()
	_, err = amvg.Extract(ctx, [][]float64{make([]float64, 20)})
	if !errors.Is(err, ErrSeriesTooShort) {
		t.Errorf("amvg short series error = %v, want ErrSeriesTooShort", err)
	}

	// ErrShapeMismatch / *ShapeError on label and prediction-length
	// mismatches.
	train, labels := predictableDataset(t, 31)
	if _, err := p.Train(ctx, train, labels[:3], 2); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("label mismatch = %v, want ErrShapeMismatch", err)
	}
	model, err := p.Train(ctx, train, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = model.PredictBatch(ctx, [][]float64{make([]float64, len(train[0])/2)})
	if !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("prediction length mismatch = %v, want ErrShapeMismatch", err)
	}
	var se *ShapeError
	if !errors.As(err, &se) || se.Want != len(train[0]) || se.Got != len(train[0])/2 {
		t.Errorf("prediction length error %#v, want *ShapeError{Got:%d, Want:%d}", err, len(train[0])/2, len(train[0]))
	}
	if _, err := model.ErrorRate(ctx, train, labels[:3]); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("ErrorRate label mismatch = %v, want ErrShapeMismatch", err)
	}

	// Multivariate surface.
	if _, err := trainMultivariateOnce(nil, nil, 2, Config{}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("trainMultivariateOnce(nil) = %v, want ErrShapeMismatch", err)
	}
}

// TestPipelineCancellation is the cancellation-semantics satellite: a
// mid-batch cancel returns context.Canceled promptly, leaves no extra
// goroutines behind, and the pipeline keeps working afterwards.
func TestPipelineCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()

	p, err := NewPipeline(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// A batch big enough that full extraction takes well over the cancel
	// delay (256 series × 2048 points ≈ seconds of single-threaded work).
	series := make([][]float64, 256)
	for i := range series {
		series[i] = randomSeries(2048, int64(i+1))
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.Extract(ctx, series)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Extract = %v, want context.Canceled", err)
	}
	// Promptness: the call must return long before the full batch could
	// have finished. The bound is loose (slow CI) but far below the
	// multi-second full run.
	if elapsed > 2*time.Second {
		t.Errorf("cancelled Extract took %v, want prompt return", elapsed)
	}

	// Pre-cancelled contexts never start work.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := p.Extract(done, series[:2]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Extract = %v", err)
	}

	// The pipeline stays usable after cancellations...
	if _, err := p.Extract(context.Background(), series[:4]); err != nil {
		t.Fatalf("Extract after cancel: %v", err)
	}

	// ...and Close releases every goroutine (no leaks from the cancelled
	// batch). Retry while the scheduler reaps workers.
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutine leak after cancelled batch + Close: %d alive, baseline %d", g, baseline)
	}
}

// TestPipelineTrainCancellation: cancellation propagates through the
// training path (extraction + grid search) as context.Canceled.
func TestPipelineTrainCancellation(t *testing.T) {
	p, err := NewPipeline(Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	train, labels := predictableDataset(t, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Train(ctx, train, labels, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Train = %v, want context.Canceled", err)
	}
}

// TestPipelineClosed: every method of a closed pipeline (and of models
// bound to it) reports ErrPipelineClosed.
func TestPipelineClosed(t *testing.T) {
	p, err := NewPipeline(Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	train, labels := predictableDataset(t, 51)
	model, err := p.Train(context.Background(), train, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	if _, err := p.Extract(context.Background(), train); !errors.Is(err, ErrPipelineClosed) {
		t.Errorf("Extract after Close = %v, want ErrPipelineClosed", err)
	}
	if _, err := p.Train(context.Background(), train, labels, 2); !errors.Is(err, ErrPipelineClosed) {
		t.Errorf("Train after Close = %v, want ErrPipelineClosed", err)
	}
	if _, err := model.PredictBatch(context.Background(), train); !errors.Is(err, ErrPipelineClosed) {
		t.Errorf("PredictBatch after Close = %v, want ErrPipelineClosed", err)
	}
	p.Close() // idempotent
}
