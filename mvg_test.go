package mvg

import (
	"context"
	"math"
	"strings"
	"testing"

	"mvg/internal/synth"
)

func loadFamily(t *testing.T, name string) ([][]float64, []int, [][]float64, []int, int) {
	t.Helper()
	fam, err := synth.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(1)
	return train.Series, train.Labels, test.Series, test.Labels, train.Classes()
}

func TestTrainPredictDefault(t *testing.T) {
	trX, trY, teX, teY, classes := loadFamily(t, "FreqSines")
	model, err := trainOnce(trX, trY, classes, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	errRate, err := model.ErrorRate(context.Background(), teX, teY)
	if err != nil {
		t.Fatal(err)
	}
	if errRate > 0.25 {
		t.Errorf("FreqSines error rate = %v, want ≤0.25", errRate)
	}
	if model.Classes() != classes {
		t.Errorf("Classes() = %d", model.Classes())
	}
	proba, err := model.PredictProba(context.Background(), teX[:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proba {
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("probabilities sum to %v", sum)
		}
	}
}

func TestTrainAllClassifiers(t *testing.T) {
	trX, trY, teX, teY, classes := loadFamily(t, "WarpedShapes")
	for _, clf := range []string{"xgb", "rf", "svm"} {
		clf := clf
		t.Run(clf, func(t *testing.T) {
			model, err := trainOnce(trX, trY, classes, Config{Classifier: clf, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			errRate, err := model.ErrorRate(context.Background(), teX, teY)
			if err != nil {
				t.Fatal(err)
			}
			if errRate > 0.4 {
				t.Errorf("%s error rate = %v", clf, errRate)
			}
		})
	}
}

func TestTrainStack(t *testing.T) {
	if testing.Short() {
		t.Skip("stacking is slow")
	}
	trX, trY, teX, teY, classes := loadFamily(t, "WarpedShapes")
	model, err := trainOnce(trX, trY, classes, Config{Classifier: "stack", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	errRate, err := model.ErrorRate(context.Background(), teX, teY)
	if err != nil {
		t.Fatal(err)
	}
	if errRate > 0.4 {
		t.Errorf("stack error rate = %v", errRate)
	}
}

func TestConfigValidation(t *testing.T) {
	trX, trY, _, _, classes := loadFamily(t, "FreqSines")
	bad := []Config{
		{Scale: "nope"},
		{Graphs: "nope"},
		{Features: "nope"},
		{Classifier: "nope"},
	}
	for _, cfg := range bad {
		if _, err := trainOnce(trX[:10], trY[:10], classes, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if _, err := trainOnce(nil, nil, 2, Config{}); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := trainOnce(trX, trY[:3], classes, Config{}); err == nil {
		t.Error("label length mismatch should fail")
	}
}

func TestExtractFeaturesFacade(t *testing.T) {
	trX, _, _, _, _ := loadFamily(t, "FreqSines")
	X, names, err := extractOnce(trX[:10], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != 10 || len(X[0]) != len(names) {
		t.Fatalf("shape mismatch: %d rows, %d vs %d names", len(X), len(X[0]), len(names))
	}
	// Names follow the documented scheme.
	if !strings.HasPrefix(names[0], "T0.VG.P(") {
		t.Errorf("first name = %q", names[0])
	}
	// Alternate configurations change widths.
	Xu, _, err := extractOnce(trX[:2], Config{Scale: "uvg", Graphs: "hvg", Features: "mpds"})
	if err != nil {
		t.Fatal(err)
	}
	if len(Xu[0]) != 17 {
		t.Errorf("UVG/HVG/MPDs width = %d, want 17", len(Xu[0]))
	}
}

func TestFeatureImportance(t *testing.T) {
	trX, trY, _, _, classes := loadFamily(t, "EngineNoise")
	model, err := trainOnce(trX, trY, classes, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	weights, err := model.FeatureImportance()
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != len(model.FeatureNames()) {
		t.Fatalf("weights %d vs names %d", len(weights), len(model.FeatureNames()))
	}
	for i := 1; i < len(weights); i++ {
		if weights[i].Weight > weights[i-1].Weight {
			t.Fatal("importance not sorted descending")
		}
	}
	// RF model has no importance.
	rf, err := trainOnce(trX[:20], trY[:20], classes, Config{Classifier: "rf", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.FeatureImportance(); err == nil {
		t.Error("RF importance should fail")
	}
}

func TestSummarizeGraphs(t *testing.T) {
	series := []float64{3, 1, 2, 4}
	vg, err := SummarizeVG(series)
	if err != nil {
		t.Fatal(err)
	}
	hvg, err := SummarizeHVG(series)
	if err != nil {
		t.Fatal(err)
	}
	if vg.Kind != "VG" || hvg.Kind != "HVG" {
		t.Error("kinds wrong")
	}
	if vg.N != 4 || hvg.N != 4 {
		t.Error("vertex counts wrong")
	}
	if hvg.M > vg.M {
		t.Error("HVG cannot have more edges than VG")
	}
	if len(vg.MotifProbabilities) != 17 {
		t.Errorf("motif map has %d entries", len(vg.MotifProbabilities))
	}
	if _, err := SummarizeVG(nil); err == nil {
		t.Error("empty series should fail")
	}
}

func TestMultiscaleLengths(t *testing.T) {
	lens, err := MultiscaleLengths(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{256, 128, 64, 32, 16}
	if len(lens) != len(want) {
		t.Fatalf("lengths = %v", lens)
	}
	for i := range want {
		if lens[i] != want[i] {
			t.Errorf("lengths = %v, want %v", lens, want)
		}
	}
	if _, err := MultiscaleLengths(1, 0); err == nil {
		t.Error("n=1 should fail")
	}
}
