// Package mvg is a time series classification library built on multiscale
// visibility graphs, reproducing "Extracting Statistical Graph Features for
// Accurate and Efficient Time Series Classification" (Li et al., EDBT
// 2018).
//
// The pipeline transforms each time series into a pyramid of PAA
// approximations, converts every scale into a natural visibility graph and
// a horizontal visibility graph, and extracts purely statistical features
// from each graph: the probability distribution of all graphlets of size
// ≤ 4, density, degree assortativity, the k-core number and degree
// statistics. The unordered feature vector is then classified by a generic
// model — gradient-boosted trees by default, with random forest, SVM, and
// a stacked ensemble of all three families available.
//
// Quickstart:
//
//	model, err := mvg.Train(trainSeries, trainLabels, classes, mvg.Config{})
//	if err != nil { ... }
//	pred, err := model.PredictBatch(testSeries)
//
// Batch operations (Train, PredictBatch, ExtractFeaturesBatch) run on a
// parallel worker-pool engine controlled by Config.Workers; results are
// byte-identical for every worker count. The concurrency model is
// documented in docs/concurrency.md and the feature-vector layout in
// docs/features.md.
//
// Lower-level building blocks (graph construction, motif counting, feature
// extraction) are exposed through ExtractFeatures and SummarizeGraph for
// exploratory analysis.
package mvg

import (
	"fmt"

	"mvg/internal/core"
)

// Config selects the representation and classifier. The zero value is the
// paper's recommended configuration: MVG scales, VG+HVG graphs, all
// features, XGBoost with a quick hyper-parameter grid.
type Config struct {
	// Scale is the multiscale mode: "mvg" (default), "uvg", or "amvg".
	Scale string
	// Graphs selects the transforms per scale: "both" (default), "vg", or
	// "hvg".
	Graphs string
	// Features selects per-graph statistics: "all" (default) or "mpds".
	Features string
	// Tau is the minimum multiscale approximation length (0 = the paper's
	// default of 15, negative = no threshold).
	Tau int
	// Extended adds the paper's future-work graph features (degree
	// entropy, transitivity) to every graph block.
	Extended bool

	// Classifier is "xgb" (default), "rf", "svm", or "stack" (stacked
	// generalization over all three families, Algorithm 2).
	Classifier string
	// FullGrid switches hyper-parameter search from the quick grid to the
	// paper's full grid (slower).
	FullGrid bool
	// Folds is the stratified CV fold count for model selection
	// (default 3, as in the paper).
	Folds int
	// Oversample enables random oversampling of minority classes.
	Oversample bool
	// Seed makes training deterministic (default 0 is a valid seed).
	Seed int64

	// Workers caps the worker goroutines the batch engine fans feature
	// extraction and model-selection grid search across. Zero or negative
	// selects GOMAXPROCS (one worker per available CPU). Results are
	// byte-identical for every worker count — see docs/concurrency.md for
	// the determinism guarantee.
	Workers int
}

func (c Config) scaleMode() (core.ScaleMode, error) {
	switch c.Scale {
	case "", "mvg":
		return core.FullMultiscale, nil
	case "uvg":
		return core.Uniscale, nil
	case "amvg":
		return core.ApproxMultiscale, nil
	}
	return 0, fmt.Errorf("mvg: unknown scale mode %q (want mvg, uvg or amvg)", c.Scale)
}

func (c Config) graphMode() (core.GraphMode, error) {
	switch c.Graphs {
	case "", "both":
		return core.VGAndHVG, nil
	case "vg":
		return core.VGOnly, nil
	case "hvg":
		return core.HVGOnly, nil
	}
	return 0, fmt.Errorf("mvg: unknown graph mode %q (want both, vg or hvg)", c.Graphs)
}

func (c Config) featureMode() (core.FeatureMode, error) {
	switch c.Features {
	case "", "all":
		return core.AllFeatures, nil
	case "mpds":
		return core.MPDsOnly, nil
	}
	return 0, fmt.Errorf("mvg: unknown feature mode %q (want all or mpds)", c.Features)
}

func (c Config) extractor() (*core.Extractor, error) {
	s, err := c.scaleMode()
	if err != nil {
		return nil, err
	}
	g, err := c.graphMode()
	if err != nil {
		return nil, err
	}
	f, err := c.featureMode()
	if err != nil {
		return nil, err
	}
	return core.NewExtractor(core.Options{
		Scales: s, Graphs: g, Features: f, Tau: c.Tau, Extended: c.Extended,
	})
}

// ExtractFeatures converts time series into MVG feature matrices without
// training a classifier. It returns one row per series and the matching
// feature names (e.g. "T0.HVG.P(M44)", "T2.VG.Assortativity"); see
// docs/features.md for the full feature-vector layout. It is shorthand for
// ExtractFeaturesBatch, which documents the parallel execution model.
func ExtractFeatures(series [][]float64, cfg Config) ([][]float64, []string, error) {
	return ExtractFeaturesBatch(series, cfg)
}

// ExtractFeaturesBatch is the batch entry point of the parallel extraction
// engine: it fans per-series feature extraction across cfg.Workers worker
// goroutines (0 = GOMAXPROCS), each reusing its own scratch buffers (PAA
// pyramid, visibility edge lists, motif counters) across the series it
// processes. Row i of the result always corresponds to series[i], and the
// matrix is byte-identical for every worker count (docs/concurrency.md).
func ExtractFeaturesBatch(series [][]float64, cfg Config) ([][]float64, []string, error) {
	e, err := cfg.extractor()
	if err != nil {
		return nil, nil, err
	}
	X, err := e.ExtractDatasetWorkers(series, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	return X, e.FeatureNames(len(series[0])), nil
}
