// Package mvg is a time series classification library built on multiscale
// visibility graphs, reproducing "Extracting Statistical Graph Features for
// Accurate and Efficient Time Series Classification" (Li et al., EDBT
// 2018).
//
// The pipeline transforms each time series into a pyramid of PAA
// approximations, converts every scale into a natural visibility graph and
// a horizontal visibility graph, and extracts purely statistical features
// from each graph: the probability distribution of all graphlets of size
// ≤ 4, density, degree assortativity, the k-core number and degree
// statistics. The unordered feature vector is then classified by a generic
// model — gradient-boosted trees by default, with random forest, SVM, and
// a stacked ensemble of all three families available.
//
// Quickstart:
//
//	pipe, err := mvg.NewPipeline(mvg.Config{})
//	if err != nil { ... }
//	defer pipe.Close()
//	model, err := pipe.Train(ctx, trainSeries, trainLabels, classes)
//	if err != nil { ... }
//	pred, err := model.PredictBatch(ctx, testSeries)
//
// A Pipeline is built once — Config validated eagerly, feature extractor
// compiled, worker pool spawned — and reused for every batch; its
// per-worker scratch buffers survive across calls, which is what makes
// small batches cheap. All batch methods take a context.Context with
// cooperative cancellation, and failures are typed (ErrBadConfig,
// ErrSeriesTooShort, ErrShapeMismatch, usable with errors.Is/As). The
// concurrency model is documented in docs/concurrency.md, the feature
// layout in docs/features.md, and the migration guide from the removed
// one-shot free functions in docs/api.md.
//
// Lower-level building blocks (graph construction, motif counting, feature
// extraction) are exposed through Pipeline.Extract and SummarizeGraph for
// exploratory analysis.
package mvg

import (
	"mvg/internal/core"
)

// Config selects the representation and classifier. The zero value is the
// paper's recommended configuration: MVG scales, VG+HVG graphs, all
// features, XGBoost with a quick hyper-parameter grid.
type Config struct {
	// Scale is the multiscale mode: "mvg" (default), "uvg", or "amvg".
	Scale string
	// Graphs selects the transforms per scale: "both" (default), "vg", or
	// "hvg".
	Graphs string
	// Features selects per-graph statistics: "all" (default) or "mpds".
	Features string
	// Tau is the minimum multiscale approximation length (0 = the paper's
	// default of 15, negative = no threshold).
	Tau int
	// Extended adds the paper's future-work graph features (degree
	// entropy, transitivity) to every graph block.
	Extended bool

	// NoDetrend disables removal of the least-squares linear trend before
	// graph construction, and NoZNormalize disables z-normalization.
	// Visibility-graph structure is invariant under both transforms (they
	// are affine plus a linear trend, which neither visibility criterion
	// can see), so for the graph-statistical features this library
	// extracts they only matter at the floating-point margin. Streaming
	// pipelines set both: with window-relative preprocessing off, the
	// sliding-window engine can maintain the T0 graphs incrementally and
	// stay bit-identical to batch extraction (see docs/streaming.md).
	NoDetrend    bool
	NoZNormalize bool

	// Classifier is "xgb" (default), "rf", "svm", or "stack" (stacked
	// generalization over all three families, Algorithm 2).
	Classifier string
	// FullGrid switches hyper-parameter search from the quick grid to the
	// paper's full grid (slower).
	FullGrid bool
	// Folds is the stratified CV fold count for model selection
	// (default 3, as in the paper).
	Folds int
	// Oversample enables random oversampling of minority classes.
	Oversample bool
	// Seed makes training deterministic (default 0 is a valid seed).
	Seed int64

	// Workers caps the worker goroutines the batch engine fans feature
	// extraction and model-selection grid search across. Zero or negative
	// selects GOMAXPROCS (one worker per available CPU). Results are
	// byte-identical for every worker count — see docs/concurrency.md for
	// the determinism guarantee. On a Pipeline this is the initial value;
	// Pipeline.SetWorkers retunes it live.
	Workers int
}

func (c Config) scaleMode() (core.ScaleMode, error) {
	switch c.Scale {
	case "", "mvg":
		return core.FullMultiscale, nil
	case "uvg":
		return core.Uniscale, nil
	case "amvg":
		return core.ApproxMultiscale, nil
	}
	return 0, &ConfigError{Field: "Scale", Value: c.Scale, Want: `"mvg", "uvg" or "amvg"`}
}

func (c Config) graphMode() (core.GraphMode, error) {
	switch c.Graphs {
	case "", "both":
		return core.VGAndHVG, nil
	case "vg":
		return core.VGOnly, nil
	case "hvg":
		return core.HVGOnly, nil
	}
	return 0, &ConfigError{Field: "Graphs", Value: c.Graphs, Want: `"both", "vg" or "hvg"`}
}

func (c Config) featureMode() (core.FeatureMode, error) {
	switch c.Features {
	case "", "all":
		return core.AllFeatures, nil
	case "mpds":
		return core.MPDsOnly, nil
	}
	return 0, &ConfigError{Field: "Features", Value: c.Features, Want: `"all" or "mpds"`}
}

// validateClassifier rejects unknown classifier families eagerly, so
// NewPipeline fails at construction rather than deep inside Train. It is
// the single public whitelist; the dispatch switch in fitClassifier must
// cover exactly these names (its default arm reports an internal
// inconsistency, not a config error, so drift between the two is loud).
func (c Config) validateClassifier() error {
	switch c.Classifier {
	case "", "xgb", "rf", "svm", "stack":
		return nil
	}
	return &ConfigError{Field: "Classifier", Value: c.Classifier, Want: `"xgb", "rf", "svm" or "stack"`}
}

func (c Config) extractor() (*core.Extractor, error) {
	s, err := c.scaleMode()
	if err != nil {
		return nil, err
	}
	g, err := c.graphMode()
	if err != nil {
		return nil, err
	}
	f, err := c.featureMode()
	if err != nil {
		return nil, err
	}
	return core.NewExtractor(core.Options{
		Scales: s, Graphs: g, Features: f, Tau: c.Tau, Extended: c.Extended,
		NoDetrend: c.NoDetrend, NoZNormalize: c.NoZNormalize,
	})
}
