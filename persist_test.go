package mvg

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	trX, trY, teX, _, classes := loadFamily(t, "FreqSines")
	model, err := trainOnce(trX, trY, classes, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must match exactly.
	p1, err := model.PredictProba(context.Background(), teX)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.PredictProba(context.Background(), teX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatalf("prediction drift after reload at [%d][%d]: %v vs %v",
					i, j, p1[i][j], p2[i][j])
			}
		}
	}
	if loaded.Classes() != model.Classes() {
		t.Error("classes lost")
	}
	n1, n2 := model.FeatureNames(), loaded.FeatureNames()
	if len(n1) != len(n2) {
		t.Fatal("feature names lost")
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("feature names changed")
		}
	}
	// Importance still available on the reloaded model.
	if _, err := loaded.FeatureImportance(); err != nil {
		t.Errorf("importance after reload: %v", err)
	}

	// The file-based helpers round-trip the same way (the serving
	// registry's load path).
	path := filepath.Join(t.TempDir(), "model.mvg")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := fromFile.PredictProba(context.Background(), teX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p3[i][j] {
				t.Fatalf("prediction drift after file reload at [%d][%d]: %v vs %v",
					i, j, p1[i][j], p3[i][j])
			}
		}
	}
	if fromFile.Workers() != 0 {
		t.Errorf("loaded model Workers() = %d, want 0 (GOMAXPROCS)", fromFile.Workers())
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.mvg")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestSaveUnsupportedClassifier(t *testing.T) {
	trX, trY, _, _, classes := loadFamily(t, "FreqSines")
	model, err := trainOnce(trX[:20], trY[:20], classes, Config{Classifier: "rf", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err == nil {
		t.Error("saving an rf model should fail")
	}
}

func TestLoadModelGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := LoadModel(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}
