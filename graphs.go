package mvg

import (
	"fmt"

	"mvg/internal/graph"
	"mvg/internal/motif"
	"mvg/internal/timeseries"
	"mvg/internal/visibility"
)

// GraphSummary exposes one visibility graph and its statistical features
// for exploration, visualization and the examples. The fields mirror one
// per-graph block of the classification feature vector (docs/features.md):
// the grouped motif probabilities plus the non-MPD statistics.
type GraphSummary struct {
	// Kind is "VG" or "HVG".
	Kind string
	// N and M are the vertex and edge counts.
	N, M int
	// Edges lists undirected edges as (i, j) with i < j.
	Edges [][2]int
	// Density is 2M / N(N-1).
	Density float64
	// Assortativity is Newman's degree assortativity (0 when undefined).
	Assortativity float64
	// KCore is the graph's degeneracy (the paper's K-core feature).
	KCore int
	// MaxDegree, MinDegree, MeanDegree summarize the degree sequence.
	MaxDegree, MinDegree int
	MeanDegree           float64
	// MotifProbabilities maps motif names (M21..M411, see docs/features.md
	// for the shape each name denotes) to their grouped probabilities.
	MotifProbabilities map[string]float64
}

func summarize(kind string, g *graph.Graph) GraphSummary {
	r, _ := g.Assortativity()
	maxD, minD, meanD := g.DegreeStats()
	probs := motif.Count(g).Probabilities()
	mp := make(map[string]float64, len(motif.Names))
	for i, name := range motif.Names {
		mp[name] = probs[i]
	}
	return GraphSummary{
		Kind:               kind,
		N:                  g.N(),
		M:                  g.M(),
		Edges:              g.Edges(),
		Density:            g.Density(),
		Assortativity:      r,
		KCore:              g.Degeneracy(),
		MaxDegree:          maxD,
		MinDegree:          minD,
		MeanDegree:         meanD,
		MotifProbabilities: mp,
	}
}

// SummarizeVG builds the natural visibility graph of the series and
// returns its summary. The series is used as-is (no detrending or
// normalization — visibility graphs are affine invariant).
func SummarizeVG(series []float64) (GraphSummary, error) {
	g, err := visibility.VG(series)
	if err != nil {
		return GraphSummary{}, err
	}
	return summarize("VG", g), nil
}

// SummarizeHVG builds the horizontal visibility graph of the series and
// returns its summary.
func SummarizeHVG(series []float64) (GraphSummary, error) {
	g, err := visibility.HVG(series)
	if err != nil {
		return GraphSummary{}, err
	}
	return summarize("HVG", g), nil
}

// MultiscaleLengths returns the lengths of the multiscale approximations
// (T0, T1, ..., Tm) the default pipeline would build for a series of
// length n with threshold tau (0 = the paper's default of 15). These are
// the scales whose per-graph blocks make up the feature vector, in the
// order documented in docs/features.md.
func MultiscaleLengths(n, tau int) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("mvg: series too short: %d", n)
	}
	if tau == 0 {
		tau = timeseries.DefaultTau
	}
	if tau < 2 {
		tau = 2
	}
	lengths := []int{n}
	for n/2 > tau {
		n /= 2
		lengths = append(lengths, n)
	}
	return lengths, nil
}
