package mvg

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"

	"mvg/internal/core"
	"mvg/internal/parallel"
)

// Pipeline is the first-class unit of work of the library: a Config
// validated and compiled once into a feature extractor, plus a persistent
// worker pool whose per-worker scratch buffers (PAA pyramid, CSR arrays,
// motif counters) survive across calls. Build it once with NewPipeline and
// reuse it for every batch — extraction on a warm pipeline allocates only
// the result rows, where the per-call free functions rebuild the compiled
// extractor and re-grow a throwaway pool's scratch on every invocation
// (BenchmarkPipelineReuse quantifies the difference; small batches feel it
// most, which is exactly what a serving coalescer flushes).
//
// All methods take a context.Context with cooperative cancellation:
// between per-series jobs the pool checks the context, so abandoned work
// stops burning CPU promptly and the call returns ctx.Err(). Results are
// byte-identical for every worker count and identical to the deprecated
// free functions — see docs/concurrency.md.
//
// A Pipeline is safe for concurrent use. Close releases the worker
// goroutines; a pipeline that is dropped without Close is cleaned up when
// the garbage collector collects it, so Close is about promptness, not
// correctness. After Close every method returns ErrPipelineClosed.
type Pipeline struct {
	cfg       Config
	extractor *core.Extractor
	pool      *parallel.Pool[*core.Scratch]
	workers   atomic.Int64
	cleanup   runtime.Cleanup
}

// NewPipeline validates cfg eagerly and compiles it into a reusable
// pipeline. Invalid configurations return a *ConfigError (matching
// errors.Is(err, ErrBadConfig)) naming the offending field — at
// construction, not on the first batch. The returned pipeline has not
// spawned any goroutines yet; workers start on the first call and persist
// until Close.
func NewPipeline(cfg Config) (*Pipeline, error) {
	e, err := cfg.extractor()
	if err != nil {
		return nil, err
	}
	if err := cfg.validateClassifier(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:       cfg,
		extractor: e,
		pool:      parallel.NewPool(core.NewScratch),
	}
	p.workers.Store(int64(cfg.Workers))
	// Safety net for pipelines dropped without Close (including every
	// model built by the deprecated free functions): release the pool's
	// goroutines when the pipeline becomes unreachable. The cleanup
	// argument is the pool, not the pipeline, so it does not keep the
	// pipeline alive.
	p.cleanup = runtime.AddCleanup(p, func(pool *parallel.Pool[*core.Scratch]) {
		pool.Close()
	}, p.pool)
	return p, nil
}

// Config returns the configuration the pipeline was built with. The
// Workers field reflects the construction-time value; the live cap is
// Workers().
func (p *Pipeline) Config() Config { return p.cfg }

// FeatureNames returns the names of the features extracted from series of
// the given length, in output order (e.g. "T0.HVG.P(M44)"; the layout is
// specified in docs/features.md).
func (p *Pipeline) FeatureNames(seriesLen int) []string {
	return p.extractor.FeatureNames(seriesLen)
}

// NumFeatures returns the feature-vector width for series of the given
// length under the pipeline's configuration.
func (p *Pipeline) NumFeatures(seriesLen int) int {
	return p.extractor.NumFeatures(seriesLen)
}

// SetWorkers retunes the worker-goroutine cap used by every subsequent
// batch (0 = GOMAXPROCS). Results are byte-identical for every worker
// count, so this only affects throughput. It is safe to call while batches
// are in flight: running batches keep the cap they started with.
func (p *Pipeline) SetWorkers(workers int) { p.workers.Store(int64(workers)) }

// Workers reports the current worker-goroutine cap (0 = GOMAXPROCS).
func (p *Pipeline) Workers() int { return int(p.workers.Load()) }

// Close releases the pipeline's worker goroutines and waits for them to
// exit; batches already holding a worker complete first. Close is
// idempotent. After Close, every method of the pipeline — and of any Model
// bound to it — returns ErrPipelineClosed. Closing is optional (an
// unreachable pipeline is cleaned up by the garbage collector) but
// releases the goroutines deterministically.
func (p *Pipeline) Close() {
	p.cleanup.Stop()
	p.pool.Close()
}

// Extract converts the batch into MVG feature matrices on the persistent
// pool: one row per series, row i always corresponding to series[i], with
// per-series jobs fanned across up to Workers() goroutines. When the
// batch is smaller than the worker budget and every series is long
// (≥4096 samples), the engine instead fans each series' per-scale graph
// builds across the pool, so a single long series still uses all
// workers; the output is bit-identical either way (docs/concurrency.md).
// The context is checked between jobs; on cancellation the call returns
// ctx.Err() promptly and the remaining series are never extracted. An
// empty batch returns a *ShapeError (errors.Is(err, ErrShapeMismatch));
// a series too short for the configured scales returns an error matching
// ErrSeriesTooShort.
func (p *Pipeline) Extract(ctx context.Context, series [][]float64) ([][]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(series) == 0 {
		return nil, &ShapeError{What: "series batch", Got: 0, Want: -1}
	}
	X, err := p.extractor.ExtractDatasetPool(ctx, p.pool, p.Workers(), series)
	if err != nil {
		return nil, p.wrapErr(err)
	}
	return X, nil
}

// Train extracts features from the labelled batch and fits the configured
// classifier (grid-search cross validation runs on the same pool), exactly
// like the deprecated free Train. The returned Model is bound to this
// pipeline: predictions reuse the pipeline's warm workers, and SetWorkers
// on either retunes both. Labels must be dense ids in [0, classes).
func (p *Pipeline) Train(ctx context.Context, series [][]float64, labels []int, classes int) (*Model, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(series) == 0 {
		return nil, &ShapeError{What: "training series batch", Got: 0, Want: -1}
	}
	if len(series) != len(labels) {
		return nil, &ShapeError{What: "labels", Got: len(labels), Want: len(series)}
	}
	X, err := p.Extract(ctx, series)
	if err != nil {
		return nil, err
	}
	clf, scaler, err := fitClassifier(ctx, p.runner(), X, labels, classes, p.cfg)
	if err != nil {
		return nil, p.wrapErr(err)
	}
	return &Model{
		pipe:      p,
		scaler:    scaler,
		clf:       clf,
		classes:   classes,
		names:     p.extractor.FeatureNames(len(series[0])),
		seriesLen: len(series[0]),
		// The drift baseline is computed on the raw (pre-scaler) feature
		// rows — the same space Stream.Features emits, so streamed windows
		// score against exactly what training saw.
		drift: computeDriftBaseline(X, labels, classes),
	}, nil
}

// runner exposes the pipeline's pool as the executor for scratch-free
// fan-out (grid-search cross validation), honouring the live worker cap at
// each call.
func (p *Pipeline) runner() parallel.Runner {
	return parallel.RunnerFunc(func(ctx context.Context, n int, fn func(i int) error) error {
		return p.pool.Run(ctx, p.Workers(), n, fn)
	})
}

// wrapErr translates internal sentinel errors into their public
// counterparts (pool closed → ErrPipelineClosed); everything else passes
// through unchanged.
func (p *Pipeline) wrapErr(err error) error {
	if errors.Is(err, parallel.ErrPoolClosed) {
		return ErrPipelineClosed
	}
	return err
}
