package mvg

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"mvg/internal/bulk"
)

// This file is the library surface over internal/bulk, the offline
// dataset-scale extraction subsystem (docs/bulk.md): Pipeline.ExtractToStore
// streams a dataset of any size into an on-disk columnar feature store
// with bounded memory and manifest-driven resumability, and OpenFeatureStore
// reads one back so training can start from precomputed features instead
// of re-extracting — the expensive half of Train amortized across
// classifier experiments.

// SeriesSource streams a labelled dataset in bounded chunks: NextChunk
// returns the next batch of series with aligned raw label tokens, and
// io.EOF after the last batch. At most one chunk is resident in the bulk
// pipeline at any moment, so implementations should size chunks to
// whatever comfortably fits in memory (a few thousand series).
type SeriesSource interface {
	NextChunk() (series [][]float64, labels []string, err error)
}

// SliceSource adapts an in-memory dataset to the SeriesSource interface,
// yielding chunks of up to chunkSize rows (non-positive selects 1024).
func SliceSource(series [][]float64, labels []string, chunkSize int) SeriesSource {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	return &sliceSource{series: series, labels: labels, chunk: chunkSize}
}

type sliceSource struct {
	series [][]float64
	labels []string
	chunk  int
	pos    int
}

func (s *sliceSource) NextChunk() ([][]float64, []string, error) {
	if s.pos >= len(s.series) {
		return nil, nil, io.EOF
	}
	end := s.pos + s.chunk
	if end > len(s.series) {
		end = len(s.series)
	}
	series, labels := s.series[s.pos:end], s.labels[s.pos:end]
	s.pos = end
	return series, labels, nil
}

// UCRSource streams a UCR-format text dataset (label,v1,...,vn per line,
// comma or whitespace separated) in chunks of up to chunkSize rows.
// Malformed records surface with the ucr error taxonomy (*ucr.ParseError
// matching ucr.ErrMalformed); name labels the input in error messages.
func UCRSource(r io.Reader, name string, chunkSize int) SeriesSource {
	return bulk.NewUCRSource(r, name, chunkSize)
}

// NDJSONSource streams newline-delimited JSON records of the form
// {"label": "a", "series": [1, 2.5, ...]} in chunks of up to chunkSize
// rows. Labels may be JSON strings or numbers; numbers are kept verbatim
// as tokens.
func NDJSONSource(r io.Reader, name string, chunkSize int) SeriesSource {
	return bulk.NewNDJSONSource(r, name, chunkSize)
}

// extractionConfig is the subset of Config that determines feature
// values. Its canonical JSON is what a feature store records, and its
// hash is the resume- and train-compatibility key: classifier settings
// deliberately stay out, so one store serves many training experiments.
type extractionConfig struct {
	Scale        string `json:"scale"`
	Graphs       string `json:"graphs"`
	Features     string `json:"features"`
	Tau          int    `json:"tau"`
	Extended     bool   `json:"extended"`
	NoDetrend    bool   `json:"no_detrend"`
	NoZNormalize bool   `json:"no_z_normalize"`
}

// extractionConfigJSON canonicalizes cfg's extraction fields: defaults are
// made explicit so that two Configs that extract identically (e.g. Scale
// "" and "mvg") hash identically.
func extractionConfigJSON(cfg Config) ([]byte, error) {
	e := extractionConfig{
		Scale:        cfg.Scale,
		Graphs:       cfg.Graphs,
		Features:     cfg.Features,
		Tau:          cfg.Tau,
		Extended:     cfg.Extended,
		NoDetrend:    cfg.NoDetrend,
		NoZNormalize: cfg.NoZNormalize,
	}
	if e.Scale == "" {
		e.Scale = "mvg"
	}
	if e.Graphs == "" {
		e.Graphs = "both"
	}
	if e.Features == "" {
		e.Features = "all"
	}
	if e.Tau == 0 {
		e.Tau = 15 // the paper's default threshold
	} else if e.Tau < 0 {
		e.Tau = -1 // any negative means "no threshold"
	}
	return json.Marshal(e)
}

// StoreOptions configures Pipeline.ExtractToStore.
type StoreOptions struct {
	// Dir is the store directory; created if missing.
	Dir string
	// Dataset names the input in the manifest. A store built for one
	// dataset name refuses to resume under another.
	Dataset string
	// Resume skips chunks an earlier (possibly interrupted) run already
	// extracted, after verifying their input hashes and shard checksums.
	// When false, any existing store in Dir is removed first.
	Resume bool
	// Progress, when non-nil, observes every chunk in order.
	Progress func(chunk, rows int, skipped bool)
}

// StoreResult summarizes a completed ExtractToStore run.
type StoreResult struct {
	// Rows and Chunks describe the finished store.
	Rows, Chunks int
	// Extracted and Skipped count chunks computed this run vs verified
	// and kept from a previous one.
	Extracted, Skipped int
}

// ExtractToStore streams src through the pipeline into a columnar feature
// store at opts.Dir: one shard per chunk plus a manifest checkpointed
// after every shard, so memory stays bounded by the chunk size regardless
// of dataset size and a killed run resumes instead of restarting
// (docs/bulk.md). Store bytes are a pure function of (input, extraction
// config) — the same determinism contract as Extract — so resumed and
// uninterrupted runs produce byte-identical stores.
func (p *Pipeline) ExtractToStore(ctx context.Context, src SeriesSource, opts StoreOptions) (StoreResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfgJSON, err := extractionConfigJSON(p.cfg)
	if err != nil {
		return StoreResult{}, fmt.Errorf("mvg: %w", err)
	}
	runOpts := bulk.RunOptions{
		Dir:          opts.Dir,
		Dataset:      opts.Dataset,
		ConfigJSON:   cfgJSON,
		Extract:      p.Extract,
		FeatureNames: p.FeatureNames,
		Resume:       opts.Resume,
	}
	if opts.Progress != nil {
		runOpts.Progress = func(pr bulk.Progress) {
			opts.Progress(pr.Chunk, pr.Rows, pr.Skipped)
		}
	}
	res, err := bulk.Run(ctx, src, runOpts)
	if err != nil {
		return StoreResult{}, p.wrapErr(err)
	}
	return StoreResult{
		Rows:      res.Manifest.Rows,
		Chunks:    len(res.Manifest.Chunks),
		Extracted: res.Extracted,
		Skipped:   res.Skipped,
	}, nil
}

// FeatureStore is a read handle on a completed columnar feature store.
// All accessors return copies; a FeatureStore is safe for concurrent use.
type FeatureStore struct {
	dir string
	m   *bulk.Manifest
}

// OpenFeatureStore opens the store at dir, validating its manifest. An
// incomplete store (an interrupted extraction) is rejected — re-run the
// extraction with resume enabled to finish it first.
func OpenFeatureStore(dir string) (*FeatureStore, error) {
	m, err := bulk.ReadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("mvg: open feature store %s: %w", dir, err)
	}
	if !m.Complete {
		return nil, fmt.Errorf("mvg: feature store %s is incomplete (extraction was interrupted; re-run extract with resume to finish it)", dir)
	}
	return &FeatureStore{dir: dir, m: m}, nil
}

// Rows reports the total number of feature rows in the store.
func (s *FeatureStore) Rows() int { return s.m.Rows }

// NumChunks reports how many shards the store holds.
func (s *FeatureStore) NumChunks() int { return len(s.m.Chunks) }

// Cols reports the feature-vector width.
func (s *FeatureStore) Cols() int { return s.m.Cols }

// SeriesLen reports the uniform input series length the features were
// extracted from.
func (s *FeatureStore) SeriesLen() int { return s.m.SeriesLen }

// Dataset reports the dataset name recorded at extraction time.
func (s *FeatureStore) Dataset() string { return s.m.Dataset }

// FeatureNames returns the names of the store's feature columns, in
// column order.
func (s *FeatureStore) FeatureNames() []string {
	return append([]string(nil), s.m.FeatureNames...)
}

// ClassNames maps dense label ids back to the raw label tokens, in
// first-seen input order.
func (s *FeatureStore) ClassNames() []string {
	return append([]string(nil), s.m.ClassNames...)
}

// ConfigJSON returns the canonical extraction-config JSON the store was
// built under.
func (s *FeatureStore) ConfigJSON() []byte {
	return append([]byte(nil), s.m.Config...)
}

// ExtractionConfig reconstructs the Config extraction fields the store
// was built under (classifier fields are zero — they were never part of
// the store). A pipeline built from the result is guaranteed compatible
// with TrainFromStore and extracts features bit-identical to the store's.
func (s *FeatureStore) ExtractionConfig() (Config, error) {
	var e extractionConfig
	if err := json.Unmarshal(s.m.Config, &e); err != nil {
		return Config{}, fmt.Errorf("mvg: feature store %s: config: %w", s.dir, err)
	}
	return Config{
		Scale:        e.Scale,
		Graphs:       e.Graphs,
		Features:     e.Features,
		Tau:          e.Tau,
		Extended:     e.Extended,
		NoDetrend:    e.NoDetrend,
		NoZNormalize: e.NoZNormalize,
	}, nil
}

// Chunk loads one shard after verifying its checksum against the
// manifest, returning dense label ids and the row-major feature matrix.
func (s *FeatureStore) Chunk(index int) (labels []int, x [][]float64, err error) {
	ids, x, err := bulk.ReadChunkRows(s.dir, s.m, index)
	if err != nil {
		return nil, nil, fmt.Errorf("mvg: feature store %s: %w", s.dir, err)
	}
	labels = make([]int, len(ids))
	for i, id := range ids {
		if int(id) < 0 || int(id) >= len(s.m.ClassNames) {
			return nil, nil, fmt.Errorf("mvg: feature store %s: chunk %d row %d: label id %d outside [0,%d)",
				s.dir, index, i, id, len(s.m.ClassNames))
		}
		labels[i] = int(id)
	}
	return labels, x, nil
}

// Matrix loads the entire store as one feature matrix with aligned dense
// labels — the shape fitClassifier wants. The full matrix is resident
// after this call (8·rows·cols bytes of features), which is fine for
// training: the classifier needs it all anyway.
func (s *FeatureStore) Matrix() (x [][]float64, labels []int, err error) {
	x = make([][]float64, 0, s.m.Rows)
	labels = make([]int, 0, s.m.Rows)
	for i := range s.m.Chunks {
		ids, rows, err := s.Chunk(i)
		if err != nil {
			return nil, nil, err
		}
		x = append(x, rows...)
		labels = append(labels, ids...)
	}
	return x, labels, nil
}

// Train fits the configured classifier on the store's precomputed
// features — extraction, the expensive half of Pipeline.Train, is skipped
// entirely. cfg's extraction fields must match the store's (same hash the
// resume path checks); classifier fields are free to vary, which is the
// point: one store, many training experiments. The returned model is
// bound to a fresh pipeline built from cfg and predicts on raw series
// exactly like a Pipeline.Train model.
func (s *FeatureStore) Train(ctx context.Context, cfg Config) (*Model, error) {
	p, err := NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	m, err := p.TrainFromStore(ctx, s)
	if err != nil {
		p.Close()
		return nil, err
	}
	return m, nil
}

// TrainFromStore is FeatureStore.Train on an existing pipeline: the
// model shares p's warm worker pool, and p's extraction config must match
// the store's.
func (p *Pipeline) TrainFromStore(ctx context.Context, s *FeatureStore) (*Model, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	want, err := extractionConfigJSON(p.cfg)
	if err != nil {
		return nil, fmt.Errorf("mvg: %w", err)
	}
	if bulk.HashConfig(want) != s.m.ConfigHash {
		return nil, fmt.Errorf("mvg: feature store %s was extracted under config %s, not this pipeline's %s — its features would not match what this configuration extracts",
			s.dir, s.m.Config, want)
	}
	X, labels, err := s.Matrix()
	if err != nil {
		return nil, err
	}
	classes := len(s.m.ClassNames)
	clf, scaler, err := fitClassifier(ctx, p.runner(), X, labels, classes, p.cfg)
	if err != nil {
		return nil, p.wrapErr(err)
	}
	return &Model{
		pipe:      p,
		scaler:    scaler,
		clf:       clf,
		classes:   classes,
		names:     s.FeatureNames(),
		seriesLen: s.m.SeriesLen,
		drift:     computeDriftBaseline(X, labels, classes),
	}, nil
}
