package mvg

import (
	"context"
	"sync"
	"testing"
)

// TestPipelineMixedTrafficDeterminism hammers one shared pipeline with
// concurrent long-series requests (routed to the in-series scale-parallel
// path) and short-series batches (routed to the per-series path), under
// the race detector in CI. Every result must match the reference computed
// on a quiet pipeline bit for bit: the two scheduling paths share the
// worker pool and its scratch, and neither contention nor interleaving
// may leak into the output.
func TestPipelineMixedTrafficDeterminism(t *testing.T) {
	p, err := NewPipeline(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	long := [][]float64{randomSeries(8192, 5)}
	batch := make([][]float64, 12)
	for i := range batch {
		batch[i] = randomSeries(256, int64(i+1))
	}
	ctx := context.Background()
	wantLong, err := p.Extract(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	wantBatch, err := p.Extract(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}

	same := func(got, want [][]float64) bool {
		for i := range want {
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					return false
				}
			}
		}
		return true
	}

	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, 8*rounds)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := p.Extract(ctx, long)
				if err != nil {
					errc <- err
					return
				}
				if !same(got, wantLong) {
					t.Error("long-series result diverged under mixed traffic")
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := p.Extract(ctx, batch)
				if err != nil {
					errc <- err
					return
				}
				if !same(got, wantBatch) {
					t.Error("batch result diverged under mixed traffic")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
