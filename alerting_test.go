package mvg

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/synth"
)

// alertModel is the shared trained fixture for the alerting tests: a
// 2-class WarpedShapes model (seriesLen 128), trained once.
var (
	alertModelOnce sync.Once
	alertModelVal  *Model
	alertModelErr  error
	alertSeriesA   []float64 // a test series the model labels by class
	alertSeriesB   []float64
)

func alertModel(t *testing.T) *Model {
	t.Helper()
	alertModelOnce.Do(func() {
		fam, err := synth.ByName("WarpedShapes")
		if err != nil {
			alertModelErr = err
			return
		}
		train, test := fam.Generate(1)
		alertModelVal, alertModelErr = trainOnce(train.Series, train.Labels, train.Classes(), Config{Folds: 2, Seed: 1, Workers: 2})
		if alertModelErr != nil {
			return
		}
		for i, y := range test.Labels {
			if y == 0 && alertSeriesA == nil {
				alertSeriesA = test.Series[i]
			}
			if y == 1 && alertSeriesB == nil {
				alertSeriesB = test.Series[i]
			}
		}
	})
	if alertModelErr != nil {
		t.Fatal(alertModelErr)
	}
	if alertSeriesA == nil || alertSeriesB == nil {
		t.Fatal("test split lacks both classes")
	}
	return alertModelVal
}

// alertScenario is a series engineered to flip labels midway: windows of
// class-A samples, then class-B, then back.
func alertScenario() []float64 {
	out := make([]float64, 0, 5*len(alertSeriesA))
	for _, part := range [][]float64{alertSeriesA, alertSeriesA, alertSeriesB, alertSeriesB, alertSeriesA} {
		out = append(out, part...)
	}
	return out
}

func alertScenarioTriggers() []AlertTrigger {
	return []AlertTrigger{
		{Kind: AlertKindFlip},
		{Name: "b-high", Kind: AlertKindProba, Class: 1, Rise: 0.8, Clear: 0.4, For: 2},
		{Kind: AlertKindDrift, Rise: 1e6, Clear: 1},
	}
}

// driveAlerts streams the series through PredictAlert and returns every
// transition plus the per-hop probability bit patterns.
func driveAlerts(t *testing.T, m *Model, series []float64, hop int) ([]AlertTransition, [][]uint64) {
	t.Helper()
	s, err := m.NewStream(hop)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlerts(alertScenarioTriggers()...); err != nil {
		t.Fatal(err)
	}
	var trs []AlertTransition
	var probaBits [][]uint64
	for i, x := range series {
		ready, err := s.Push(x)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if !ready {
			continue
		}
		pt, err := s.PredictAlert(context.Background())
		if err != nil {
			t.Fatalf("hop at %d: %v", i, err)
		}
		if pt.Sample != i {
			t.Fatalf("point sample %d, want %d", pt.Sample, i)
		}
		if !pt.HasDrift {
			t.Fatalf("hop at %d: drift missing on a freshly trained model", i)
		}
		trs = append(trs, pt.Transitions...)
		bits := make([]uint64, len(pt.Proba))
		for j, p := range pt.Proba {
			bits[j] = math.Float64bits(p)
		}
		probaBits = append(probaBits, bits)
	}
	return trs, probaBits
}

// TestAlertDeterminismAcrossWorkers pins the acceptance criterion: the
// same series produces bit-identical alert transition sequences (and
// probability vectors) at workers 1, 2, 4 and 8.
func TestAlertDeterminismAcrossWorkers(t *testing.T) {
	m := alertModel(t)
	series := alertScenario()
	const hop = 32

	baseTrs, baseProba := driveAlerts(t, m, series, hop)
	if len(baseTrs) == 0 {
		t.Fatal("scenario produced no transitions; the determinism pin would be vacuous")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		m.SetWorkers(workers)
		trs, proba := driveAlerts(t, m, series, hop)
		if !reflect.DeepEqual(trs, baseTrs) {
			t.Fatalf("workers=%d: transitions diverged:\n%+v\nvs\n%+v", workers, trs, baseTrs)
		}
		if !reflect.DeepEqual(proba, baseProba) {
			t.Fatalf("workers=%d: probability bits diverged", workers)
		}
	}
	m.SetWorkers(0)
}

// TestAlertScenarioFiresAndResolves: the engineered label-flip series must
// take the flip trigger through a full FIRING/RESOLVED cycle.
func TestAlertScenarioFiresAndResolves(t *testing.T) {
	m := alertModel(t)
	trs, _ := driveAlerts(t, m, alertScenario(), 32)
	var fired, resolved bool
	for _, tr := range trs {
		if tr.Trigger == "flip" && tr.To == AlertFiring {
			fired = true
		}
		if tr.Trigger == "flip" && tr.To == AlertResolved {
			resolved = true
		}
	}
	if !fired || !resolved {
		t.Fatalf("flip trigger cycle incomplete (fired=%v resolved=%v): %+v", fired, resolved, trs)
	}
}

// TestPredictAlertMatchesPredict: the prediction fields of PredictAlert are
// bit-identical to Stream.Predict on the same windows.
func TestPredictAlertMatchesPredict(t *testing.T) {
	m := alertModel(t)
	series := alertScenario()
	s1, err := m.NewStream(64)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.NewStream(64)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range series {
		r1, err := s1.Push(x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Push(x); err != nil {
			t.Fatal(err)
		}
		if !r1 {
			continue
		}
		class, proba, err := s1.Predict(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := s2.PredictAlert(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if pt.Class != class || !bitsEqual(pt.Proba, proba) {
			t.Fatalf("hop at %d: PredictAlert (%d, %v) != Predict (%d, %v)", i, pt.Class, pt.Proba, class, proba)
		}
	}
}

func TestComputeDriftBaseline(t *testing.T) {
	X := [][]float64{
		{0, 0}, {2, 0}, // class 0: centroid (1,0), distances 1,1 -> spread 1
		{10, 10}, {10, 14}, // class 1: centroid (10,12), distances 2,2 -> spread 2
		{5, 5}, // label out of range: ignored
	}
	labels := []int{0, 0, 1, 1, 7}
	b := computeDriftBaseline(X, labels, 3)
	if got := b.centroids[0]; !bitsEqual(got, []float64{1, 0}) {
		t.Fatalf("class 0 centroid = %v", got)
	}
	if got := b.centroids[1]; !bitsEqual(got, []float64{10, 12}) {
		t.Fatalf("class 1 centroid = %v", got)
	}
	if b.centroids[2] != nil {
		t.Fatalf("absent class got a centroid: %v", b.centroids[2])
	}
	if b.spreads[0] != 1 || b.spreads[1] != 2 {
		t.Fatalf("spreads = %v", b.spreads)
	}

	// Score: a point at a centroid is 0; normalization divides by the
	// class spread; absent classes are skipped.
	if d := b.score([]float64{1, 0}); d != 0 {
		t.Fatalf("score at centroid = %v", d)
	}
	if d := b.score([]float64{10, 16}); d != 2 {
		t.Fatalf("score = %v, want 4/spread2 = 2", d)
	}
	// Nearest class wins: (3,0) is 2 from class 0 (spread 1) and far from
	// class 1, so the score is 2.
	if d := b.score([]float64{3, 0}); d != 2 {
		t.Fatalf("score = %v, want 2", d)
	}

	// A degenerate class (all rows identical) gets spread 1.
	b2 := computeDriftBaseline([][]float64{{4, 4}, {4, 4}}, []int{0, 0}, 1)
	if b2.spreads[0] != 1 {
		t.Fatalf("degenerate spread = %v, want 1", b2.spreads[0])
	}

	// No rows at all: empty baseline.
	if !computeDriftBaseline(nil, nil, 2).empty() {
		t.Fatal("empty input produced a baseline")
	}
}

func TestModelDriftErrors(t *testing.T) {
	m := alertModel(t)
	if !m.HasDrift() {
		t.Fatal("freshly trained model has no drift baseline")
	}
	if _, err := m.Drift(make([]float64, 1)); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("wrong-width error = %v, want ErrShapeMismatch", err)
	}

	bare := &Model{names: m.names}
	if bare.HasDrift() {
		t.Fatal("baseline-less model claims drift")
	}
	if _, err := bare.Drift(make([]float64, len(m.names))); !errors.Is(err, ErrNoDriftBaseline) {
		t.Fatalf("baseline-less error = %v, want ErrNoDriftBaseline", err)
	}
}

// TestDriftPersistRoundTrip: centroids and spreads survive Save/LoadModel
// and score identically.
func TestDriftPersistRoundTrip(t *testing.T) {
	m := alertModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.HasDrift() {
		t.Fatal("drift baseline lost in persistence")
	}
	feats, err := m.pipe.Extract(context.Background(), [][]float64{alertSeriesB})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := m.Drift(feats[0])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := loaded.Drift(feats[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(d1) != math.Float64bits(d2) {
		t.Fatalf("drift drifted across persistence: %v vs %v", d1, d2)
	}
	if IsInvalid := math.IsNaN(d1) || math.IsInf(d1, 0); IsInvalid {
		t.Fatalf("drift score %v is not finite", d1)
	}
}

func TestSetAlertsValidation(t *testing.T) {
	m := alertModel(t)

	// Feature-only streams cannot alert.
	fs, err := m.Pipeline().NewStream(m.SeriesLen(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.SetAlerts(AlertTrigger{Kind: AlertKindFlip}); err == nil {
		t.Fatal("feature-only stream accepted alerts")
	}

	s, err := m.NewStream(16)
	if err != nil {
		t.Fatal(err)
	}
	// Invalid trigger (clear >= rise) matches the public sentinel.
	err = s.SetAlerts(AlertTrigger{Kind: AlertKindProba, Rise: 0.4, Clear: 0.8})
	if !errors.Is(err, ErrBadAlertTrigger) {
		t.Fatalf("invalid trigger error = %v, want ErrBadAlertTrigger", err)
	}
	if s.Alerts() != nil || s.AlertTriggers() != nil {
		t.Fatal("failed SetAlerts left triggers behind")
	}

	// Drift trigger against a baseline-less model.
	bare := &Model{pipe: m.pipe, clf: m.clf, classes: m.classes, names: m.names, seriesLen: m.seriesLen}
	bs, err := bare.NewStream(16)
	if err != nil {
		t.Fatal(err)
	}
	err = bs.SetAlerts(AlertTrigger{Kind: AlertKindDrift, Rise: 2, Clear: 1})
	if !errors.Is(err, ErrNoDriftBaseline) {
		t.Fatalf("drift-without-baseline error = %v, want ErrNoDriftBaseline", err)
	}
	// Non-drift triggers are still fine on that model, and PredictAlert
	// reports HasDrift=false.
	if err := bs.SetAlerts(AlertTrigger{Kind: AlertKindFlip}); err != nil {
		t.Fatal(err)
	}
	for _, x := range alertSeriesA {
		if _, err := bs.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	pt, err := bs.PredictAlert(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if pt.HasDrift {
		t.Fatal("baseline-less model reported a drift score")
	}

	// SetAlerts with no triggers removes alerting.
	if err := s.SetAlerts(AlertTrigger{Kind: AlertKindFlip}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlerts(); err != nil {
		t.Fatal(err)
	}
	if s.Alerts() != nil {
		t.Fatal("SetAlerts() did not remove triggers")
	}

	// ParseAlertTriggers is the spec-string path to the same place.
	trig, err := ParseAlertTriggers("kind=proba,class=1,rise=0.9,clear=0.5; kind=flip")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlerts(trig...); err != nil {
		t.Fatal(err)
	}
	got := s.AlertTriggers()
	if len(got) != 2 || got[0].Name != "proba1" || got[1].Name != "flip" {
		t.Fatalf("AlertTriggers() = %+v", got)
	}
}

// TestStreamResetResetsAlerts: Reset re-arms triggers to OK and re-latches
// auto baselines.
func TestStreamResetResetsAlerts(t *testing.T) {
	m := alertModel(t)
	s, err := m.NewStream(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlerts(AlertTrigger{Kind: AlertKindFlip}); err != nil {
		t.Fatal(err)
	}
	drive := func(series []float64) []AlertTransition {
		var trs []AlertTransition
		for _, x := range series {
			ready, err := s.Push(x)
			if err != nil {
				t.Fatal(err)
			}
			if !ready {
				continue
			}
			pt, err := s.PredictAlert(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			trs = append(trs, pt.Transitions...)
		}
		return trs
	}
	series := append(append([]float64{}, alertSeriesA...), alertSeriesB...)
	if trs := drive(series); len(trs) == 0 {
		t.Fatal("label flip produced no transitions")
	}
	s.Reset()
	if sts := s.Alerts(); sts[0].State != AlertOK {
		t.Fatalf("state after Reset = %v, want OK", sts[0].State)
	}
	// After Reset the baseline re-latches to the first prediction of the
	// new series: the first hop can never fire, whatever the stale
	// baseline was (a class-B window against an un-reset class-A baseline
	// would fire immediately).
	if trs := drive(alertSeriesB); len(trs) != 0 {
		t.Fatalf("re-latched baseline produced transitions: %+v", trs)
	}
}

// constProbaClf is a deterministic, allocation-minimal classifier used by
// benchmarks and tests that need a Model without paying for training.
type constProbaClf struct{ classes int }

func (c constProbaClf) Fit([][]float64, []int, int) error { return nil }
func (c constProbaClf) Clone() ml.Classifier              { return c }
func (c constProbaClf) PredictProba(X [][]float64) ([][]float64, error) {
	out := make([][]float64, len(X))
	for i := range out {
		row := make([]float64, c.classes)
		row[0] = 1
		out[i] = row
	}
	return out, nil
}
