// Example ecg reproduces the paper's medical motivation: classifying
// heartbeat morphologies (normal, inverted T wave, ST elevation) from
// ECG-like signals, and compares the MVG pipeline against a 1NN-DTW
// baseline on the same data.
package main

import (
	"context"
	"fmt"
	"log"

	"mvg"
	"mvg/internal/ml"
	"mvg/internal/ml/knn"
	"mvg/internal/synth"
)

func main() {
	fam, err := synth.ByName("SynthECG")
	if err != nil {
		log.Fatal(err)
	}
	train, test := fam.Generate(42)
	fmt.Printf("SynthECG: %d train / %d test beats, %d classes, %d samples per beat\n",
		train.Len(), test.Len(), train.Classes(), train.SeriesLength())
	fmt.Println("classes: 1=normal beat, 2=inverted T wave, 3=ST elevation")

	// MVG pipeline.
	pipe, err := mvg.NewPipeline(mvg.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()
	model, err := pipe.Train(context.Background(), train.Series, train.Labels, train.Classes())
	if err != nil {
		log.Fatal(err)
	}
	mvgErr, err := model.ErrorRate(context.Background(), test.Series, test.Labels)
	if err != nil {
		log.Fatal(err)
	}

	// 1NN-DTW baseline with a 10% warping window.
	dtw := knn.NewSeriesDTW(train.SeriesLength() / 10)
	if err := dtw.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		log.Fatal(err)
	}
	proba, err := dtw.PredictProba(test.Series)
	if err != nil {
		log.Fatal(err)
	}
	dtwErr := ml.ErrorRate(ml.Predict(proba), test.Labels)

	fmt.Printf("\nerror rates:  MVG = %.3f   1NN-DTW = %.3f\n", mvgErr, dtwErr)

	// Per-class recall for the MVG model.
	pred, err := model.Predict(context.Background(), test.Series)
	if err != nil {
		log.Fatal(err)
	}
	recall := make([]int, train.Classes())
	total := make([]int, train.Classes())
	for i, label := range test.Labels {
		total[label]++
		if pred[i] == label {
			recall[label]++
		}
	}
	fmt.Println("\nMVG per-class recall:")
	for c := range recall {
		fmt.Printf("  class %s: %d/%d = %.2f\n",
			train.ClassNames[c], recall[c], total[c],
			float64(recall[c])/float64(total[c]))
	}
}
