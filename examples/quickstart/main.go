// Quickstart: build visibility graphs from a tiny series (the paper's
// Figure 1), inspect their statistical features, then train and evaluate
// an MVG classifier end to end on a generated dataset.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"mvg"
)

func main() {
	// --- Part 1: one series → two graphs -------------------------------
	series := []float64{0.71, 0.53, 0.56, 0.29, 0.30, 0.77, 0.01, 0.76,
		0.81, 0.71, 0.05, 0.41, 0.86, 0.79, 0.37, 0.96, 0.87, 0.06, 0.95, 0.36}

	vg, err := mvg.SummarizeVG(series)
	if err != nil {
		log.Fatal(err)
	}
	hvg, err := mvg.SummarizeHVG(series)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- a 20-point series becomes two graphs (paper Figure 1) --")
	for _, g := range []mvg.GraphSummary{vg, hvg} {
		fmt.Printf("%-4s n=%d m=%d density=%.3f assortativity=%+.3f kcore=%d meanDeg=%.2f\n",
			g.Kind, g.N, g.M, g.Density, g.Assortativity, g.KCore, g.MeanDegree)
	}
	fmt.Printf("HVG is a subgraph of VG: %d of %d VG edges are horizontal-visible\n\n",
		hvg.M, vg.M)

	// --- Part 2: a whole dataset → features ----------------------------
	lengths, err := mvg.MultiscaleLengths(256, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- a 256-point series is analysed at scales %v --\n\n", lengths)

	trainX, trainY := makeWaves(60, 1)
	testX, testY := makeWaves(40, 2)

	// A Pipeline is built once (Config validated eagerly, worker pool
	// spawned) and reused for every batch — extraction here, training
	// below; all methods take a context for cooperative cancellation.
	ctx := context.Background()
	pipe, err := mvg.NewPipeline(mvg.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	feats, err := pipe.Extract(ctx, trainX[:1])
	if err != nil {
		log.Fatal(err)
	}
	names := pipe.FeatureNames(len(trainX[0]))
	fmt.Printf("-- each series yields %d named statistical features, e.g. --\n", len(names))
	for _, i := range []int{0, 8, 17, 18, 22} {
		fmt.Printf("   %-22s = %.4f\n", names[i], feats[0][i])
	}
	fmt.Println()

	// --- Part 3: train, predict, score ---------------------------------
	model, err := pipe.Train(ctx, trainX, trainY, 2)
	if err != nil {
		log.Fatal(err)
	}
	errRate, err := model.ErrorRate(ctx, testX, testY)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- classification: sine vs sawtooth, error rate = %.3f --\n", errRate)

	pred, err := model.Predict(ctx, testX[:5])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first five predictions: %v (truth %v)\n", pred, testY[:5])
}

// makeWaves generates a toy 2-class problem: noisy sines vs noisy
// sawtooth waves with random phase.
func makeWaves(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		series := make([]float64, 128)
		phase := rng.Float64()
		for j := range series {
			u := float64(j)/16 + phase
			if i%2 == 0 {
				series[j] = math.Sin(2 * math.Pi * u)
			} else {
				series[j] = 2*math.Mod(u, 1) - 1
			}
			series[j] += 0.1 * rng.NormFloat64()
		}
		X[i] = series
		y[i] = i % 2
	}
	return X, y
}
