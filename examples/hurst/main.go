// Example hurst demonstrates the property visibility graphs were invented
// for (Lacasa et al. 2009): the structure of a VG reflects the Hurst
// exponent of a fractional-Brownian-motion-like process. Power-law series
// with H ∈ {0.25, 0.5, 0.75} produce measurably different graph densities
// and degree statistics, which the MVG pipeline turns into an accurate
// classifier — a task with no local patterns at all.
package main

import (
	"context"
	"fmt"
	"log"

	"mvg"
	"mvg/internal/synth"
)

func main() {
	fam, err := synth.ByName("HurstWalks")
	if err != nil {
		log.Fatal(err)
	}
	train, test := fam.Generate(23)
	fmt.Printf("HurstWalks: %d train / %d test series, length %d\n",
		train.Len(), test.Len(), train.SeriesLength())
	fmt.Println("classes: H=0.25 (anti-persistent), H=0.5 (Brownian), H=0.75 (persistent)")

	// Mean VG statistics per class: density and degree spread shift with H.
	type agg struct {
		density, meanDeg, maxDeg float64
		n                        int
	}
	aggs := make([]agg, train.Classes())
	for i, series := range train.Series {
		s, err := mvg.SummarizeVG(series)
		if err != nil {
			log.Fatal(err)
		}
		a := &aggs[train.Labels[i]]
		a.density += s.Density
		a.meanDeg += s.MeanDegree
		a.maxDeg += float64(s.MaxDegree)
		a.n++
	}
	fmt.Println("\nmean VG statistics per Hurst class:")
	fmt.Printf("  %-8s %10s %10s %10s\n", "class", "density", "meanDeg", "maxDeg")
	hNames := []string{"H=0.25", "H=0.50", "H=0.75"}
	for c, a := range aggs {
		fmt.Printf("  %-8s %10.4f %10.2f %10.1f\n",
			hNames[c], a.density/float64(a.n), a.meanDeg/float64(a.n), a.maxDeg/float64(a.n))
	}

	pipe, err := mvg.NewPipeline(mvg.Config{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()
	model, err := pipe.Train(context.Background(), train.Series, train.Labels, train.Classes())
	if err != nil {
		log.Fatal(err)
	}
	errRate, err := model.ErrorRate(context.Background(), test.Series, test.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMVG test error rate: %.3f\n", errRate)
	fmt.Println("(distance- and shapelet-based methods have nothing to match here:")
	fmt.Println(" every series is a different random path — only its fractal texture differs)")
}
