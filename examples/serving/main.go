// Serving walkthrough: train a small model, save it, stand up the HTTP
// serving layer (the same stack cmd/mvgserve runs), and drive it as a
// client — single predictions (coalesced), batch predictions, registry
// listing, hot reload, metrics, and graceful shutdown.
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mvg"
	"mvg/internal/serve/core"
	"mvg/internal/serve/httpapi"
)

func main() {
	// ---- 1. Train and save a model (normally done offline; mvgcli -save) ----
	series, labels := dataset(1)
	fmt.Println("training a small sine-vs-noise classifier...")
	pipe, err := mvg.NewPipeline(mvg.Config{Folds: 2, Seed: 1})
	check(err)
	defer pipe.Close()
	model, err := pipe.Train(context.Background(), series, labels, 2)
	check(err)

	dir, err := os.MkdirTemp("", "mvgserve-demo")
	check(err)
	defer os.RemoveAll(dir)
	check(model.SaveFile(filepath.Join(dir, "demo"+core.ModelExt)))

	// ---- 2. Start the serving stack (what mvgserve -models <dir> does) ----
	registry := core.NewRegistry()
	names, err := registry.LoadDir(dir)
	check(err)
	fmt.Printf("registry loaded: %v\n", names)

	engine, err := core.NewEngine(core.Config{
		Registry: registry,
		Window:   2 * time.Millisecond, // coalescing window
		MaxBatch: 64,
	})
	check(err)
	srv := httpapi.NewServer(engine)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// ---- 3. Single prediction: coalesced under the hood ----
	var out struct {
		Model     string `json:"model"`
		Class     *int   `json:"class"`
		Coalesced bool   `json:"coalesced"`
	}
	post(base+"/v1/models/demo/predict", map[string]any{"series": series[0]}, &out)
	fmt.Printf("single predict: class=%d (true label %d), coalesced=%v\n", *out.Class, labels[0], out.Coalesced)

	// ---- 4. Concurrent singles: the coalescer merges them into batches ----
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var r struct {
				Class *int `json:"class"`
			}
			post(base+"/v1/models/demo/predict", map[string]any{"series": series[i%len(series)]}, &r)
		}()
	}
	wg.Wait()
	fmt.Println("16 concurrent singles served (check mvgserve_batch_size in /metrics)")

	// ---- 5. Batch prediction: one body, one engine pass ----
	var batchOut struct {
		Classes []int `json:"classes"`
	}
	post(base+"/v1/models/demo/predict", map[string]any{"batch": series[:6]}, &batchOut)
	fmt.Printf("batch predict: %v (true %v)\n", batchOut.Classes, labels[:6])

	// ---- 6. Probabilities ----
	var probaOut struct {
		Proba []float64 `json:"proba"`
	}
	post(base+"/v1/models/demo/predict_proba", map[string]any{"series": series[1]}, &probaOut)
	fmt.Printf("predict_proba: %.4f\n", probaOut.Proba)

	// ---- 7. Registry listing and hot reload ----
	listing := getBody(base + "/v1/models")
	fmt.Printf("models listing: %.120s...\n", listing)
	post(base+"/v1/models/demo/reload", nil, nil)
	fmt.Println("model hot-reloaded from disk (in-flight requests kept the old snapshot)")

	// ---- 8. Metrics ----
	metrics := getBody(base + "/metrics")
	fmt.Printf("\nmetrics excerpt:\n")
	for _, line := range bytes.Split([]byte(metrics), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("mvgserve_coalesced")) || bytes.HasPrefix(line, []byte("mvgserve_in_flight")) {
			fmt.Printf("  %s\n", line)
		}
	}

	// ---- 9. Graceful shutdown: stop the listener, then drain coalescers ----
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	check(httpSrv.Shutdown(ctx))
	check(engine.Shutdown(ctx))
	fmt.Println("\ndrained and shut down cleanly")
}

func post(url string, body any, out any) {
	var r io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		check(err)
		r = bytes.NewReader(raw)
	}
	resp, err := http.Post(url, "application/json", r)
	check(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	check(err)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		check(json.Unmarshal(data, out))
	}
}

func getBody(url string) string {
	resp, err := http.Get(url)
	check(err)
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	check(err)
	return string(data)
}

// dataset generates a two-class toy problem: smooth sines vs noise bursts.
func dataset(seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	const perClass, length = 10, 128
	series := make([][]float64, 0, 2*perClass)
	labels := make([]int, 0, 2*perClass)
	for i := 0; i < perClass; i++ {
		smooth := make([]float64, length)
		phase := rng.Float64()
		for k := range smooth {
			smooth[k] = math.Sin(2*math.Pi*(float64(k)/16+phase)) + 0.05*rng.NormFloat64()
		}
		series = append(series, smooth)
		labels = append(labels, 0)

		noisy := make([]float64, length)
		for k := range noisy {
			noisy[k] = rng.NormFloat64()
		}
		series = append(series, noisy)
		labels = append(labels, 1)
	}
	return series, labels
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
