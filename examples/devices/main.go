// Example devices mirrors the paper's industrial motivation (the
// ElectricDevices / Kitchen-appliance UCR rows): classifying appliances
// from their electricity load profiles. It demonstrates the facade's
// configuration surface by comparing the four classifier back ends on the
// same MVG features.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mvg"
	"mvg/internal/synth"
)

func main() {
	fam, err := synth.ByName("ApplianceLoad")
	if err != nil {
		log.Fatal(err)
	}
	train, test := fam.Generate(7)
	fmt.Printf("ApplianceLoad: %d train / %d test profiles, %d classes, length %d\n",
		train.Len(), test.Len(), train.Classes(), train.SeriesLength())
	fmt.Println("classes: 1=fridge (short duty cycles), 2=oven (long plateau), 3=washer (agitation bursts)")
	fmt.Println()

	ctx := context.Background()
	for _, clf := range []string{"xgb", "rf", "svm", "stack"} {
		pipe, err := mvg.NewPipeline(mvg.Config{Classifier: clf, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		model, err := pipe.Train(ctx, train.Series, train.Labels, train.Classes())
		if err != nil {
			log.Fatal(err)
		}
		errRate, err := model.ErrorRate(ctx, test.Series, test.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s error rate = %.3f  (train+test %.1fs)\n",
			clf, errRate, time.Since(t0).Seconds())
		pipe.Close()
	}

	// The xgb back end can explain which graph features matter.
	pipe, err := mvg.NewPipeline(mvg.Config{Classifier: "xgb", Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()
	model, err := pipe.Train(ctx, train.Series, train.Labels, train.Classes())
	if err != nil {
		log.Fatal(err)
	}
	weights, err := model.FeatureImportance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 8 features by XGBoost gain:")
	for _, fw := range weights[:8] {
		fmt.Printf("  %-24s %.4f\n", fw.Name, fw.Weight)
	}
}
