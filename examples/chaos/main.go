// Example chaos revisits the visibility-graph literature's flagship
// application (Iacovacci & Lacasa; Xu, Zhang & Small): telling chaotic
// dynamics from stochastic noise using nothing but graph motif statistics.
// It prints the mean motif profiles per process type — visibly different —
// and then classifies held-out series with the MVG pipeline.
package main

import (
	"context"
	"fmt"
	"log"

	"mvg"
	"mvg/internal/synth"
)

func main() {
	fam, err := synth.ByName("ChaosMaps")
	if err != nil {
		log.Fatal(err)
	}
	train, test := fam.Generate(11)
	fmt.Printf("ChaosMaps: %d train / %d test series, length %d\n",
		train.Len(), test.Len(), train.SeriesLength())
	fmt.Println("classes: 1=logistic map x'=4x(1-x), 2=white noise, 3=noisy logistic map")

	// Mean HVG motif profile per class: the classic separation result.
	classNames := []string{"chaos", "noise", "noisy chaos"}
	motifs := []string{"M41", "M42", "M43", "M44", "M45", "M46"}
	sums := make([]map[string]float64, train.Classes())
	counts := make([]int, train.Classes())
	for i := range sums {
		sums[i] = map[string]float64{}
	}
	for i, series := range train.Series {
		s, err := mvg.SummarizeHVG(series)
		if err != nil {
			log.Fatal(err)
		}
		c := train.Labels[i]
		counts[c]++
		for _, m := range motifs {
			sums[c][m] += s.MotifProbabilities[m]
		}
	}
	fmt.Println("\nmean HVG motif probabilities (connected 4-motifs):")
	fmt.Printf("  %-12s", "class")
	for _, m := range motifs {
		fmt.Printf(" %8s", m)
	}
	fmt.Println()
	for c := range sums {
		fmt.Printf("  %-12s", classNames[c])
		for _, m := range motifs {
			fmt.Printf(" %8.4f", sums[c][m]/float64(counts[c]))
		}
		fmt.Println()
	}

	pipe, err := mvg.NewPipeline(mvg.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()
	model, err := pipe.Train(context.Background(), train.Series, train.Labels, train.Classes())
	if err != nil {
		log.Fatal(err)
	}
	errRate, err := model.ErrorRate(context.Background(), test.Series, test.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMVG test error rate: %.3f\n", errRate)
}
