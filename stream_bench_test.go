package mvg

import (
	"math/rand"
	"testing"

	"mvg/internal/graph"
	"mvg/internal/visibility"
)

// BenchmarkStreamPush proves the streaming engine's point: maintaining the
// sliding-window visibility graphs incrementally versus rebuilding them
// from scratch on every window slide, at the acceptance geometry
// (windowLen=512, hop=1). "incremental" is Stream.Push on the streaming
// configuration; "recompute" is what a naive stream would do per slide —
// materialize the window and run the batch VG+HVG builders. The CI bench
// gate pins incremental allocs/op and enforces the ≥5× ns/op ratio via
// the benchcheck ratio gate (.github/BENCH_baseline.json).
func BenchmarkStreamPush(b *testing.B) {
	const windowLen = 512
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 1<<14)
	level := 0.0
	for i := range samples {
		level += rng.NormFloat64()
		samples[i] = level
	}

	b.Run("incremental", func(b *testing.B) {
		p, err := NewPipeline(streamBenchCfg())
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		s, err := p.NewStream(windowLen, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Warm: fill the window and wrap the ring once so every slot's
		// row storage has grown.
		for i := 0; i < 2*windowLen; i++ {
			if _, err := s.Push(samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Push(samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("recompute", func(b *testing.B) {
		// The per-slide full rebuild: ring write + window materialization
		// + batch VG and HVG construction, with every buffer reused (the
		// best a non-incremental stream could do).
		ring := make([]float64, windowLen)
		window := make([]float64, windowLen)
		var builder visibility.Builder
		var vg, hvg graph.Graph
		rebuild := func(i int) {
			ring[i%windowLen] = samples[i%len(samples)]
			for k := 0; k < windowLen; k++ {
				window[k] = ring[(i+1+k)%windowLen]
			}
			edges, err := builder.VGEdges(window)
			if err != nil {
				b.Fatal(err)
			}
			vg.BuildUnchecked(windowLen, edges)
			edges, err = builder.HVGEdges(window)
			if err != nil {
				b.Fatal(err)
			}
			hvg.BuildUnchecked(windowLen, edges)
		}
		for i := 0; i < 2*windowLen; i++ {
			rebuild(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rebuild(i + 2*windowLen)
		}
	})
}

func streamBenchCfg() Config {
	return Config{Scale: "uvg", Graphs: "both", NoDetrend: true, NoZNormalize: true}
}

// BenchmarkStreamHop measures the full per-hop serving cost — Push plus
// Features (CSR snapshot + feature kernels) — at hop=8, the
// latency-versus-cost tradeoff documented in docs/streaming.md.
func BenchmarkStreamHop(b *testing.B) {
	const windowLen, hop = 512, 8
	p, err := NewPipeline(streamBenchCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	s, err := p.NewStream(windowLen, hop)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 1<<14)
	level := 0.0
	for i := range samples {
		level += rng.NormFloat64()
		samples[i] = level
	}
	for i := 0; i < 2*windowLen; i++ {
		if _, err := s.Push(samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 2 * windowLen
	for i := 0; i < b.N; i++ {
		for {
			ready, err := s.Push(samples[n%len(samples)])
			n++
			if err != nil {
				b.Fatal(err)
			}
			if ready {
				break
			}
		}
		if _, err := s.Features(); err != nil {
			b.Fatal(err)
		}
	}
}
