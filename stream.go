package mvg

import (
	"context"
	"fmt"
	"math"

	"mvg/internal/alert"
	"mvg/internal/core"
	"mvg/internal/graph"
	"mvg/internal/ml"
	"mvg/internal/visibility"
)

// Stream is the sliding-window extraction engine: samples arrive one at a
// time through Push, and on every hop boundary the current window's MVG
// feature vector (Features) or prediction (Predict, when the stream was
// built from a Model) is available without re-running the batch pipeline
// on the whole window.
//
// # Incremental maintenance
//
// Both visibility criteria are local — whether (i,j) is an edge depends
// only on the samples between i and j — so sliding the window never
// rewires surviving pairs. When the pipeline's preprocessing preserves
// graph structure at the bit level (Config.NoDetrend and
// Config.NoZNormalize set, any scale mode but "amvg"), the stream
// maintains the window's T0 visibility graphs incrementally: appending a
// sample adds only the new rightmost vertex's edges (HVG via the monotone
// stack, amortized O(1); NVG via a backward max-slope scan with an early
// exit), evicting the oldest removes only its incident edges, and
// Features snapshots the ring graphs straight into the CSR kernels.
// Otherwise the stream transparently falls back to re-extracting the
// materialized window per hop; Incremental reports which mode is active.
//
// # Determinism contract
//
// After every push, Features is bit-identical to Pipeline.Extract on the
// materialized window, in both modes — pinned by differential tests and
// the FuzzStreamAgainstBatch fuzz target (see docs/streaming.md).
//
// A Stream is a single-writer object: it must not be used from multiple
// goroutines concurrently. It holds private scratch, so it keeps working
// after Pipeline.Close (only pooled batch methods need the pool).
type Stream struct {
	pipe      *Pipeline
	model     *Model // nil for feature-only streams
	windowLen int
	hop       int

	incremental bool
	inc         *visibility.Incremental
	pushed      int

	window          []float64 // window materialization buffer
	vgSnap, hvgSnap graph.Graph
	sc              *core.Scratch
	rowIn           [][]float64 // single-row buffer for Predict

	alerts *alert.Evaluator // nil until SetAlerts; see alerting.go
}

// NewStream returns a sliding-window extraction stream over this
// pipeline's configuration: windows of windowLen samples, emitting one
// feature point every hop samples once the first window is full. Invalid
// geometry returns a *ConfigError; a window too short for the configured
// scales returns an error matching ErrSeriesTooShort.
func (p *Pipeline) NewStream(windowLen, hop int) (*Stream, error) {
	if windowLen < 2 {
		return nil, &ConfigError{Field: "Stream.WindowLen", Value: fmt.Sprint(windowLen), Want: "at least 2"}
	}
	if hop < 1 || hop > windowLen {
		return nil, &ConfigError{Field: "Stream.Hop", Value: fmt.Sprint(hop), Want: fmt.Sprintf("1..windowLen (%d)", windowLen)}
	}
	if p.extractor.NumFeatures(windowLen) == 0 {
		return nil, fmt.Errorf("%w: windowLen=%d yields no scales under %q", ErrSeriesTooShort, windowLen, p.cfg.Scale)
	}
	cfg := p.cfg
	// Incremental maintenance requires bit-exact structure preservation:
	// window-relative preprocessing off (its transforms are structurally
	// invisible to visibility graphs anyway, but re-evaluating slope
	// comparisons on renormalized floats is not bit-exact) and a scale
	// mode in which T0 contributes features at all.
	incremental := cfg.NoDetrend && cfg.NoZNormalize && cfg.Scale != "amvg"
	maintainVG := incremental && cfg.Graphs != "hvg"
	maintainHVG := incremental && cfg.Graphs != "vg"
	inc, err := visibility.NewIncremental(windowLen, maintainVG, maintainHVG)
	if err != nil {
		return nil, err
	}
	return &Stream{
		pipe:        p,
		windowLen:   windowLen,
		hop:         hop,
		incremental: incremental,
		inc:         inc,
		sc:          core.NewScratch(),
	}, nil
}

// NewStream returns a sliding-window prediction stream bound to this
// model: the window length is the model's training length and Predict is
// available on every hop. See Pipeline.NewStream for the geometry rules.
func (m *Model) NewStream(hop int) (*Stream, error) {
	s, err := m.pipe.NewStream(m.seriesLen, hop)
	if err != nil {
		return nil, err
	}
	s.model = m
	return s, nil
}

// WindowLen returns the window length in samples.
func (s *Stream) WindowLen() int { return s.windowLen }

// Hop returns the hop: a feature point is emitted every hop samples once
// the first window is full.
func (s *Stream) Hop() int { return s.hop }

// Pushed returns how many samples have been accepted so far.
func (s *Stream) Pushed() int { return s.pushed }

// Incremental reports whether the stream maintains its window graphs
// incrementally (true) or re-extracts the window per hop (false; the
// pipeline's preprocessing is not structure-preserving at the bit level —
// see the type comment).
func (s *Stream) Incremental() bool { return s.incremental }

// Ready reports whether Features/Predict may be called: the first full
// window has been pushed.
func (s *Stream) Ready() bool { return s.pushed >= s.windowLen }

// Reset empties the stream for a new series, retaining all storage.
// Configured alert triggers keep their rules but return to StateOK with
// cleared debounce counters (and re-latch any auto baselines).
func (s *Stream) Reset() {
	s.inc.Reset()
	s.pushed = 0
	if s.alerts != nil {
		s.alerts.Reset()
	}
}

// Push appends one sample to the stream, sliding the window once it is
// full. The returned flag reports whether this push landed on a hop
// boundary — i.e. Features/Predict now describe a window not yet emitted.
// Non-finite samples are rejected with ErrNonFiniteSample and leave the
// stream untouched.
func (s *Stream) Push(x float64) (hop bool, err error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false, fmt.Errorf("%w: %v at sample %d", ErrNonFiniteSample, x, s.pushed)
	}
	if err := s.inc.Push(x); err != nil {
		return false, err
	}
	s.pushed++
	return s.pushed >= s.windowLen && (s.pushed-s.windowLen)%s.hop == 0, nil
}

// PushBatch pushes the samples in order and returns how many hop
// boundaries they crossed (features always describe the latest window; use
// per-sample Push to observe every hop). On error, samples before the
// offending one are already applied and the count reflects them.
func (s *Stream) PushBatch(xs []float64) (hops int, err error) {
	for i, x := range xs {
		h, err := s.Push(x)
		if err != nil {
			return hops, fmt.Errorf("sample %d of batch: %w", i, err)
		}
		if h {
			hops++
		}
	}
	return hops, nil
}

// Features extracts the MVG feature vector of the current window,
// bit-identical to Pipeline.Extract on the materialized window. It
// returns ErrStreamNotReady before the first full window. The returned
// slice is freshly allocated and owned by the caller.
func (s *Stream) Features() ([]float64, error) {
	if !s.Ready() {
		return nil, fmt.Errorf("%w: %d of %d samples", ErrStreamNotReady, s.pushed, s.windowLen)
	}
	s.window = s.inc.WindowInto(s.window)
	if !s.incremental {
		return s.pipe.extractor.ExtractWith(s.sc, s.window)
	}
	var vg, hvg *graph.Graph
	if s.pipe.cfg.Graphs != "hvg" {
		s.inc.SnapshotVG(&s.vgSnap)
		vg = &s.vgSnap
	}
	if s.pipe.cfg.Graphs != "vg" {
		s.inc.SnapshotHVG(&s.hvgSnap)
		hvg = &s.hvgSnap
	}
	return s.pipe.extractor.ExtractWithGraphs(s.sc, s.window, vg, hvg)
}

// Predict classifies the current window on the stream's model, returning
// the most probable class and the full probability vector (the same
// tie-breaking as Model.PredictBatch). It returns ErrStreamNotReady before
// the first full window and an error for feature-only streams built with
// Pipeline.NewStream. The context is checked up front; extraction of a
// single window is not further interruptible.
func (s *Stream) Predict(ctx context.Context) (class int, proba []float64, err error) {
	if s.model == nil {
		return 0, nil, fmt.Errorf("mvg: stream is not bound to a model (built with Pipeline.NewStream; use Model.NewStream)")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
	}
	feats, err := s.Features()
	if err != nil {
		return 0, nil, err
	}
	if s.rowIn == nil {
		s.rowIn = make([][]float64, 1)
	}
	s.rowIn[0] = feats
	probas, err := s.model.classifyFeatures(s.rowIn)
	if err != nil {
		return 0, nil, err
	}
	return ml.Predict(probas)[0], probas[0], nil
}
