package mvgpb

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// fullStreamResponse builds a StreamResponse exercising every field kind
// the generator emits: nested messages, packed doubles, varint ints,
// bools and strings.
func fullStreamResponse() *StreamResponse {
	return &StreamResponse{
		Prediction: &StreamPrediction{
			Sample:   640,
			Class:    1,
			Proba:    []float64{0.25, 0.75, math.Inf(1), -0.0, math.Pi},
			Drift:    3.5,
			HasDrift: true,
		},
		Alert: &StreamAlert{Alert: "flip", From: "OK", To: "FIRING", Sample: 641, Value: -2.5},
		Done:  &StreamDone{Samples: 700, Predictions: 8, Draining: true},
	}
}

func TestRoundTrip(t *testing.T) {
	msgs := []interface {
		Marshal() []byte
		Unmarshal([]byte) error
	}{
		&PredictRequest{Model: "ecg", Series: []float64{1, -2.5, 0, math.SmallestNonzeroFloat64}},
		&PredictResponse{Model: "ecg", Class: 3, Coalesced: true},
		&PredictProbaResponse{Model: "m", Proba: []float64{0.5, 0.5}},
		&PredictBatchRequest{Model: "m", Batch: []*Series{{Values: []float64{1, 2}}, {Values: nil}}},
		&PredictBatchResponse{Model: "m", Classes: []int32{0, 1, -1, 1 << 30}},
		&StreamRequest{Open: &StreamOpen{Model: "m", Hop: 8, Alerts: []string{"kind=flip", "kind=proba,class=1,rise=0.9,clear=0.6"}}, Samples: []float64{0.25}},
		fullStreamResponse(),
		&ListModelsRequest{},
		&ListModelsResponse{Models: []*ModelInfo{{Name: "a", Classes: 2, SeriesLen: 96, Features: 11, FeatureNames: []string{"M21", "M31"}, Workers: 4, Source: "/m/a.mvg"}}},
		&HealthRequest{},
		&HealthResponse{Status: "ok", Ready: true, Shedding: false, Models: 2, InFlight: 1, QueueDepth: 3, Streams: 7, ShedTotal: 9, EvictTotals: []*EvictCount{{Reason: "idle", Total: 2}}},
	}
	for _, msg := range msgs {
		wire := msg.Marshal()
		got := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(interface {
			Marshal() []byte
			Unmarshal([]byte) error
		})
		if err := got.Unmarshal(wire); err != nil {
			t.Fatalf("%T: Unmarshal: %v", msg, err)
		}
		// Semantic equality: NaN-free messages round-trip reflect-equal, and
		// re-marshalling must reproduce the exact bytes (deterministic
		// encoding is what the cross-transport parity suite leans on).
		if !reflect.DeepEqual(msg, got) {
			t.Errorf("%T: round trip mismatch:\n in: %+v\nout: %+v", msg, msg, got)
		}
		if again := got.Marshal(); !bytes.Equal(wire, again) {
			t.Errorf("%T: re-marshal not byte-identical", msg)
		}
	}
}

func TestFloatBitsSurvive(t *testing.T) {
	// Probability rows are compared across transports at the bit level, so
	// the codec must preserve every float64 payload bit — including NaN
	// payloads and signed zero, which reflect.DeepEqual can't check.
	in := &PredictProbaResponse{Proba: []float64{
		math.Float64frombits(0x7ff8000000000001), // NaN with payload
		math.Copysign(0, -1),
		math.SmallestNonzeroFloat64,
		math.MaxFloat64,
	}}
	var out PredictProbaResponse
	if err := out.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	if len(out.Proba) != len(in.Proba) {
		t.Fatalf("len = %d, want %d", len(out.Proba), len(in.Proba))
	}
	for i := range in.Proba {
		if math.Float64bits(in.Proba[i]) != math.Float64bits(out.Proba[i]) {
			t.Errorf("proba[%d]: bits %x != %x", i, math.Float64bits(in.Proba[i]), math.Float64bits(out.Proba[i]))
		}
	}
}

func TestUnknownFieldsSkipped(t *testing.T) {
	// A decoder built from today's schema must tolerate fields added
	// tomorrow: splice unknown varint, fixed64, fixed32 and bytes fields
	// around a known one.
	var b []byte
	b = appendTag(b, 90, wireVarint)
	b = appendVarint(b, 12345)
	b = appendTag(b, 1, wireBytes)
	b = appendBytes(b, []byte("ecg"))
	b = appendTag(b, 91, wireFixed64)
	b = appendFixed64(b, 7)
	b = appendTag(b, 92, wireBytes)
	b = appendBytes(b, []byte("future"))
	b = appendTag(b, 93, wireFixed32)
	b = append(b, 1, 2, 3, 4)
	var req PredictRequest
	if err := req.Unmarshal(b); err != nil {
		t.Fatalf("Unmarshal with unknown fields: %v", err)
	}
	if req.Model != "ecg" {
		t.Errorf("Model = %q, want ecg", req.Model)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := map[string][]byte{
		"truncated varint tag":    {0x80},
		"truncated length":        {0x0a, 0x10, 'x'},
		"partial packed double":   append(appendVarint(appendTag(nil, 2, wireBytes), 4), 1, 2, 3, 4),
		"wrong wire type string":  appendVarint(appendTag(nil, 1, wireVarint), 5),
		"overlong varint":         append(appendTag(nil, 90, wireVarint), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"truncated unknown fixed": appendTag(nil, 93, wireFixed32),
	}
	for name, data := range cases {
		var req PredictRequest
		if err := req.Unmarshal(data); err == nil {
			t.Errorf("%s: Unmarshal accepted malformed input", name)
		}
	}
}

func TestZeroMessageMarshalsEmpty(t *testing.T) {
	for _, msg := range []interface{ Marshal() []byte }{
		&PredictRequest{}, &StreamResponse{}, &HealthResponse{}, &ListModelsRequest{},
	} {
		if b := msg.Marshal(); len(b) != 0 {
			t.Errorf("%T: zero value marshals to %d bytes, want 0", msg, len(b))
		}
	}
}

// FuzzUnmarshalRoundTrip feeds arbitrary bytes to the StreamResponse
// decoder (the deepest message tree) and, whenever they decode, asserts
// the re-encode/re-decode fixpoint: Marshal(Unmarshal(b)) must decode to
// the same message and re-marshal byte-identically.
func FuzzUnmarshalRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(fullStreamResponse().Marshal())
	f.Add((&PredictRequest{Model: "m", Series: []float64{1}}).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		var m1 StreamResponse
		if err := m1.Unmarshal(data); err != nil {
			return
		}
		wire := m1.Marshal()
		var m2 StreamResponse
		if err := m2.Unmarshal(wire); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again := m2.Marshal(); !bytes.Equal(wire, again) {
			t.Fatalf("marshal not a fixpoint:\n%x\n%x", wire, again)
		}
	})
}
