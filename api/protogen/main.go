// Command protogen compiles the proto3 subset used by api/proto/mvg.proto
// into Go message types with hand-rolled wire-format codecs — a
// protoc-free generator, so regenerating api/mvgpb needs nothing beyond
// the Go toolchain (the container CI runs in has no protoc and no network
// to fetch one). The emitted encoding is canonical protobuf: varint,
// fixed64 and length-delimited wire types, fields marshalled in
// field-number order (deterministic bytes for equal messages), unknown
// fields skipped on decode. Interoperates with any real protobuf stack.
//
// Supported subset: proto3 syntax; one package; scalar fields (double,
// int32, int64, uint32, uint64, bool, string, bytes), repeated scalars
// (packed where the spec packs them), message-typed and repeated
// message-typed fields; services with unary and bidi-streaming methods.
// No maps, enums, oneofs, imports or nested messages — extend the parser
// when the .proto needs them.
//
// Usage (wired via go:generate in api/mvgpb):
//
//	protogen -in api/proto/mvg.proto -out api/mvgpb/mvg.pb.go -pkg mvgpb
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	in := flag.String("in", "", "input .proto file")
	out := flag.String("out", "", "output .go file")
	pkg := flag.String("pkg", "mvgpb", "Go package name of the generated file")
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "protogen: -in and -out are required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	f, err := parse(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *in, err))
	}
	code, err := emit(f, *pkg, *in)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "protogen:", err)
	os.Exit(1)
}

// ---- definition model ----

type file struct {
	protoPackage string
	messages     []*message
	services     []*service
}

type message struct {
	name   string
	fields []*field
}

type field struct {
	name     string // proto snake_case name
	typ      string // proto type name (scalar or message)
	num      int
	repeated bool
}

type service struct {
	name    string
	methods []*method
}

type method struct {
	name                       string
	in, out                    string
	clientStream, serverStream bool
}

var scalarKinds = map[string]string{
	"double": "fixed64",
	"int32":  "varint",
	"int64":  "varint",
	"uint32": "varint",
	"uint64": "varint",
	"bool":   "varint",
	"string": "bytes",
	"bytes":  "bytes",
}

// ---- lexer ----

type lexer struct {
	toks []string
	pos  int
}

// tokenize splits the source into identifiers/numbers, string literals and
// single-rune punctuation, dropping // and /* */ comments.
func tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("unterminated block comment")
			}
			i += 2 + end + 2
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		case isIdentRune(rune(c)) || (c >= '0' && c <= '9'):
			j := i
			for j < len(src) && (isIdentRune(rune(src[j])) || src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case strings.ContainsRune("{}()=;,<>[]", rune(c)):
			toks = append(toks, string(c))
			i++
		default:
			return nil, fmt.Errorf("unexpected character %q", c)
		}
	}
	return toks, nil
}

func isIdentRune(r rune) bool {
	return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

func (l *lexer) next() (string, error) {
	if l.pos >= len(l.toks) {
		return "", fmt.Errorf("unexpected end of file")
	}
	t := l.toks[l.pos]
	l.pos++
	return t, nil
}

func (l *lexer) expect(want string) error {
	t, err := l.next()
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("expected %q, got %q", want, t)
	}
	return nil
}

// ---- parser ----

func parse(src string) (*file, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	l := &lexer{toks: toks}
	f := &file{}
	for l.pos < len(l.toks) {
		t, _ := l.next()
		switch t {
		case "syntax":
			if err := l.expect("="); err != nil {
				return nil, err
			}
			v, err := l.next()
			if err != nil {
				return nil, err
			}
			if v != `"proto3"` {
				return nil, fmt.Errorf("only proto3 is supported, got %s", v)
			}
			if err := l.expect(";"); err != nil {
				return nil, err
			}
		case "package":
			v, err := l.next()
			if err != nil {
				return nil, err
			}
			f.protoPackage = v
			if err := l.expect(";"); err != nil {
				return nil, err
			}
		case "option":
			// Options (go_package) are free-form `name = value;` pairs the
			// generator does not act on: the Go package name comes from -pkg.
			for {
				v, err := l.next()
				if err != nil {
					return nil, err
				}
				if v == ";" {
					break
				}
			}
		case "message":
			m, err := parseMessage(l)
			if err != nil {
				return nil, err
			}
			f.messages = append(f.messages, m)
		case "service":
			s, err := parseService(l)
			if err != nil {
				return nil, err
			}
			f.services = append(f.services, s)
		default:
			return nil, fmt.Errorf("unexpected top-level token %q", t)
		}
	}
	if f.protoPackage == "" {
		return nil, fmt.Errorf("missing package declaration")
	}
	return f, validate(f)
}

func parseMessage(l *lexer) (*message, error) {
	name, err := l.next()
	if err != nil {
		return nil, err
	}
	if err := l.expect("{"); err != nil {
		return nil, err
	}
	m := &message{name: name}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t == "}" {
			return m, nil
		}
		fld := &field{}
		if t == "repeated" {
			fld.repeated = true
			if t, err = l.next(); err != nil {
				return nil, err
			}
		}
		fld.typ = t
		if fld.name, err = l.next(); err != nil {
			return nil, err
		}
		if err := l.expect("="); err != nil {
			return nil, err
		}
		numTok, err := l.next()
		if err != nil {
			return nil, err
		}
		if fld.num, err = strconv.Atoi(numTok); err != nil {
			return nil, fmt.Errorf("message %s field %s: bad field number %q", m.name, fld.name, numTok)
		}
		if err := l.expect(";"); err != nil {
			return nil, err
		}
		m.fields = append(m.fields, fld)
	}
}

func parseService(l *lexer) (*service, error) {
	name, err := l.next()
	if err != nil {
		return nil, err
	}
	if err := l.expect("{"); err != nil {
		return nil, err
	}
	s := &service{name: name}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t == "}" {
			return s, nil
		}
		if t != "rpc" {
			return nil, fmt.Errorf("service %s: expected rpc, got %q", s.name, t)
		}
		m := &method{}
		if m.name, err = l.next(); err != nil {
			return nil, err
		}
		if m.in, m.clientStream, err = parseRPCType(l); err != nil {
			return nil, err
		}
		if err := l.expect("returns"); err != nil {
			return nil, err
		}
		if m.out, m.serverStream, err = parseRPCType(l); err != nil {
			return nil, err
		}
		if err := l.expect(";"); err != nil {
			return nil, err
		}
		s.methods = append(s.methods, m)
	}
}

func parseRPCType(l *lexer) (typ string, streaming bool, err error) {
	if err := l.expect("("); err != nil {
		return "", false, err
	}
	t, err := l.next()
	if err != nil {
		return "", false, err
	}
	if t == "stream" {
		streaming = true
		if t, err = l.next(); err != nil {
			return "", false, err
		}
	}
	if err := l.expect(")"); err != nil {
		return "", false, err
	}
	return t, streaming, nil
}

func validate(f *file) error {
	byName := make(map[string]*message, len(f.messages))
	for _, m := range f.messages {
		if byName[m.name] != nil {
			return fmt.Errorf("duplicate message %s", m.name)
		}
		byName[m.name] = m
	}
	for _, m := range f.messages {
		nums := make(map[int]string)
		for _, fld := range m.fields {
			if fld.num <= 0 {
				return fmt.Errorf("message %s field %s: field number must be positive", m.name, fld.name)
			}
			if prev, dup := nums[fld.num]; dup {
				return fmt.Errorf("message %s: fields %s and %s share number %d", m.name, prev, fld.name, fld.num)
			}
			nums[fld.num] = fld.name
			if _, scalar := scalarKinds[fld.typ]; !scalar && byName[fld.typ] == nil {
				return fmt.Errorf("message %s field %s: unknown type %q", m.name, fld.name, fld.typ)
			}
		}
	}
	for _, s := range f.services {
		for _, m := range s.methods {
			for _, typ := range []string{m.in, m.out} {
				if byName[typ] == nil {
					return fmt.Errorf("service %s method %s: unknown message %q", s.name, m.name, typ)
				}
			}
			if m.clientStream != m.serverStream {
				return fmt.Errorf("service %s method %s: only unary and bidi-streaming methods are supported", s.name, m.name)
			}
		}
	}
	return nil
}

// ---- emitter ----

// goName converts a proto snake_case identifier to an exported Go name.
func goName(s string) string {
	var b strings.Builder
	up := true
	for _, r := range s {
		if r == '_' {
			up = true
			continue
		}
		if up {
			b.WriteString(strings.ToUpper(string(r)))
			up = false
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func goType(f *field) string {
	var base string
	switch f.typ {
	case "double":
		base = "float64"
	case "int32", "int64", "uint32", "uint64", "bool", "string":
		base = f.typ
	case "bytes":
		base = "[]byte"
	default: // message
		base = "*" + f.typ
	}
	if f.repeated {
		if f.typ == "bytes" {
			return "[][]byte"
		}
		return "[]" + base
	}
	return base
}

func isMsg(f *field) bool {
	_, scalar := scalarKinds[f.typ]
	return !scalar
}

func emit(f *file, pkg, source string) ([]byte, error) {
	w := &strings.Builder{}
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	p("// Code generated by protogen from %s. DO NOT EDIT.", source)
	p("")
	p("// Package %s holds the generated protobuf messages and method names", pkg)
	p("// of the %s service. Regenerate with `go generate ./api/...`.", f.protoPackage)
	p("package %s", pkg)
	p("")
	p(`import "math"`)
	p("")
	p("// Silence the import when no message carries a double field.")
	p("var _ = math.Float64bits")

	for _, m := range f.messages {
		emitStruct(p, m)
		emitMarshal(p, m)
		emitUnmarshal(p, m)
	}
	emitServices(p, f)

	code, err := format.Source([]byte(w.String()))
	if err != nil {
		return nil, fmt.Errorf("generated code does not parse (generator bug): %w", err)
	}
	return code, nil
}

func emitStruct(p func(string, ...any), m *message) {
	p("")
	p("// %s mirrors the %s proto message.", m.name, m.name)
	p("type %s struct {", m.name)
	for _, fld := range m.fields {
		p("\t%s %s", goName(fld.name), goType(fld))
	}
	p("}")
}

// sortedFields returns the fields in field-number order — the order
// Marshal emits them in, which is what makes equal messages produce equal
// bytes.
func sortedFields(m *message) []*field {
	fields := append([]*field(nil), m.fields...)
	sort.Slice(fields, func(i, j int) bool { return fields[i].num < fields[j].num })
	return fields
}

func emitMarshal(p func(string, ...any), m *message) {
	p("")
	p("// Marshal encodes the message in protobuf wire format, fields in")
	p("// field-number order (deterministic for equal messages).")
	p("func (m *%s) Marshal() []byte { return m.MarshalAppend(nil) }", m.name)
	p("")
	p("// MarshalAppend appends the wire encoding to b and returns the result.")
	p("func (m *%s) MarshalAppend(b []byte) []byte {", m.name)
	if len(m.fields) == 0 {
		p("\treturn b")
		p("}")
		return
	}
	for _, fld := range sortedFields(m) {
		gn := "m." + goName(fld.name)
		switch {
		case isMsg(fld) && fld.repeated:
			p("\tfor _, v := range %s {", gn)
			p("\t\tif v == nil {")
			p("\t\t\tv = &%s{}", fld.typ)
			p("\t\t}")
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendBytes(b, v.Marshal())")
			p("\t}")
		case isMsg(fld):
			p("\tif %s != nil {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendBytes(b, %s.Marshal())", gn)
			p("\t}")
		case fld.typ == "double" && fld.repeated:
			p("\tif len(%s) > 0 {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendVarint(b, uint64(8*len(%s)))", gn)
			p("\t\tfor _, v := range %s {", gn)
			p("\t\t\tb = appendFixed64(b, math.Float64bits(v))")
			p("\t\t}")
			p("\t}")
		case fld.typ == "double":
			p("\tif %s != 0 {", gn)
			p("\t\tb = appendTag(b, %d, wireFixed64)", fld.num)
			p("\t\tb = appendFixed64(b, math.Float64bits(%s))", gn)
			p("\t}")
		case fld.typ == "string" && fld.repeated:
			p("\tfor _, v := range %s {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendBytes(b, []byte(v))")
			p("\t}")
		case fld.typ == "string":
			p("\tif %s != \"\" {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendBytes(b, []byte(%s))", gn)
			p("\t}")
		case fld.typ == "bytes" && fld.repeated:
			p("\tfor _, v := range %s {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendBytes(b, v)")
			p("\t}")
		case fld.typ == "bytes":
			p("\tif len(%s) > 0 {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tb = appendBytes(b, %s)", gn)
			p("\t}")
		case fld.typ == "bool" && !fld.repeated:
			p("\tif %s {", gn)
			p("\t\tb = appendTag(b, %d, wireVarint)", fld.num)
			p("\t\tb = append(b, 1)")
			p("\t}")
		case fld.repeated: // packed varint ints
			p("\tif len(%s) > 0 {", gn)
			p("\t\tb = appendTag(b, %d, wireBytes)", fld.num)
			p("\t\tn := 0")
			p("\t\tfor _, v := range %s {", gn)
			p("\t\t\tn += sizeVarint(%s)", varintExpr(fld.typ, "v"))
			p("\t\t}")
			p("\t\tb = appendVarint(b, uint64(n))")
			p("\t\tfor _, v := range %s {", gn)
			p("\t\t\tb = appendVarint(b, %s)", varintExpr(fld.typ, "v"))
			p("\t\t}")
			p("\t}")
		default: // scalar varint ints
			p("\tif %s != 0 {", gn)
			p("\t\tb = appendTag(b, %d, wireVarint)", fld.num)
			p("\t\tb = appendVarint(b, %s)", varintExpr(fld.typ, gn))
			p("\t}")
		}
	}
	p("\treturn b")
	p("}")
}

// varintExpr converts a Go value of the field's type to the uint64 the
// varint encoder takes. Signed ints sign-extend through int64 first, the
// standard protobuf encoding for negative values.
func varintExpr(typ, v string) string {
	switch typ {
	case "int32", "int64":
		return fmt.Sprintf("uint64(int64(%s))", v)
	default:
		return fmt.Sprintf("uint64(%s)", v)
	}
}

func emitUnmarshal(p func(string, ...any), m *message) {
	p("")
	p("// Unmarshal replaces the message with the decoding of data. Unknown")
	p("// fields are skipped; a malformed buffer returns ErrInvalidWire.")
	p("func (m *%s) Unmarshal(data []byte) error {", m.name)
	p("\t*m = %s{}", m.name)
	p("\tfor len(data) > 0 {")
	p("\t\ttag, n := consumeVarint(data)")
	p("\t\tif n <= 0 {")
	p("\t\t\treturn ErrInvalidWire")
	p("\t\t}")
	p("\t\tdata = data[n:]")
	p("\t\tswitch num, wt := int(tag>>3), int(tag&7); num {")
	for _, fld := range sortedFields(m) {
		gn := "m." + goName(fld.name)
		p("\t\tcase %d:", fld.num)
		switch {
		case isMsg(fld):
			p("\t\t\tv, n := consumeBytesChecked(data, wt)")
			p("\t\t\tif n <= 0 {")
			p("\t\t\t\treturn ErrInvalidWire")
			p("\t\t\t}")
			p("\t\t\tdata = data[n:]")
			p("\t\t\te := new(%s)", fld.typ)
			p("\t\t\tif err := e.Unmarshal(v); err != nil {")
			p("\t\t\t\treturn err")
			p("\t\t\t}")
			if fld.repeated {
				p("\t\t\t%s = append(%s, e)", gn, gn)
			} else {
				p("\t\t\t%s = e", gn)
			}
		case fld.typ == "double":
			p("\t\t\tswitch wt {")
			p("\t\t\tcase wireBytes:")
			p("\t\t\t\tv, n := consumeBytes(data)")
			p("\t\t\t\tif n <= 0 || len(v)%%8 != 0 {")
			p("\t\t\t\t\treturn ErrInvalidWire")
			p("\t\t\t\t}")
			p("\t\t\t\tdata = data[n:]")
			if fld.repeated {
				p("\t\t\t\tfor len(v) > 0 {")
				p("\t\t\t\t\t%s = append(%s, math.Float64frombits(le64(v)))", gn, gn)
				p("\t\t\t\t\tv = v[8:]")
				p("\t\t\t\t}")
			} else {
				p("\t\t\t\tif len(v) != 8 {")
				p("\t\t\t\t\treturn ErrInvalidWire")
				p("\t\t\t\t}")
				p("\t\t\t\t%s = math.Float64frombits(le64(v))", gn)
			}
			p("\t\t\tcase wireFixed64:")
			p("\t\t\t\tv, n := consumeFixed64(data)")
			p("\t\t\t\tif n <= 0 {")
			p("\t\t\t\t\treturn ErrInvalidWire")
			p("\t\t\t\t}")
			p("\t\t\t\tdata = data[n:]")
			if fld.repeated {
				p("\t\t\t\t%s = append(%s, math.Float64frombits(v))", gn, gn)
			} else {
				p("\t\t\t\t%s = math.Float64frombits(v)", gn)
			}
			p("\t\t\tdefault:")
			p("\t\t\t\treturn ErrInvalidWire")
			p("\t\t\t}")
		case fld.typ == "string" || fld.typ == "bytes":
			p("\t\t\tv, n := consumeBytesChecked(data, wt)")
			p("\t\t\tif n <= 0 {")
			p("\t\t\t\treturn ErrInvalidWire")
			p("\t\t\t}")
			p("\t\t\tdata = data[n:]")
			conv := "string(v)"
			if fld.typ == "bytes" {
				conv = "append([]byte(nil), v...)"
			}
			if fld.repeated {
				p("\t\t\t%s = append(%s, %s)", gn, gn, conv)
			} else {
				p("\t\t\t%s = %s", gn, conv)
			}
		default: // varint ints and bool
			p("\t\t\tswitch wt {")
			if fld.repeated {
				p("\t\t\tcase wireBytes:")
				p("\t\t\t\tv, n := consumeBytes(data)")
				p("\t\t\t\tif n <= 0 {")
				p("\t\t\t\t\treturn ErrInvalidWire")
				p("\t\t\t\t}")
				p("\t\t\t\tdata = data[n:]")
				p("\t\t\t\tfor len(v) > 0 {")
				p("\t\t\t\t\tu, n := consumeVarint(v)")
				p("\t\t\t\t\tif n <= 0 {")
				p("\t\t\t\t\t\treturn ErrInvalidWire")
				p("\t\t\t\t\t}")
				p("\t\t\t\t\tv = v[n:]")
				p("\t\t\t\t\t%s = append(%s, %s)", gn, gn, varintDecode(fld.typ, "u"))
				p("\t\t\t\t}")
				p("\t\t\tcase wireVarint:")
				p("\t\t\t\tu, n := consumeVarint(data)")
				p("\t\t\t\tif n <= 0 {")
				p("\t\t\t\t\treturn ErrInvalidWire")
				p("\t\t\t\t}")
				p("\t\t\t\tdata = data[n:]")
				p("\t\t\t\t%s = append(%s, %s)", gn, gn, varintDecode(fld.typ, "u"))
			} else {
				p("\t\t\tcase wireVarint:")
				p("\t\t\t\tu, n := consumeVarint(data)")
				p("\t\t\t\tif n <= 0 {")
				p("\t\t\t\t\treturn ErrInvalidWire")
				p("\t\t\t\t}")
				p("\t\t\t\tdata = data[n:]")
				p("\t\t\t\t%s = %s", gn, varintDecode(fld.typ, "u"))
			}
			p("\t\t\tdefault:")
			p("\t\t\t\treturn ErrInvalidWire")
			p("\t\t\t}")
		}
	}
	p("\t\tdefault:")
	p("\t\t\tn := skipField(data, wt)")
	p("\t\t\tif n < 0 {")
	p("\t\t\t\treturn ErrInvalidWire")
	p("\t\t\t}")
	p("\t\t\tdata = data[n:]")
	p("\t\t}")
	p("\t}")
	p("\treturn nil")
	p("}")
}

func varintDecode(typ, u string) string {
	switch typ {
	case "int32":
		return fmt.Sprintf("int32(%s)", u)
	case "int64":
		return fmt.Sprintf("int64(%s)", u)
	case "uint32":
		return fmt.Sprintf("uint32(%s)", u)
	case "uint64":
		return u
	case "bool":
		return fmt.Sprintf("%s != 0", u)
	}
	panic("protogen: not a varint type: " + typ)
}

func emitServices(p func(string, ...any), f *file) {
	for _, s := range f.services {
		p("")
		p("// %sService is the full protobuf service name of %s.", s.name, s.name)
		p("const %sService = %q", s.name, f.protoPackage+"."+s.name)
		p("")
		p("// Full method paths of the %s service, as they appear in the", s.name)
		p("// gRPC :path pseudo-header.")
		p("const (")
		for _, m := range s.methods {
			p("\t%sMethod%s = %q", s.name, m.name, "/"+f.protoPackage+"."+s.name+"/"+m.name)
		}
		p(")")
		p("")
		p("// %sStreamingMethods reports, per full method path, whether the", s.name)
		p("// method is a bidi stream (true) or unary (false).")
		p("var %sStreamingMethods = map[string]bool{", s.name)
		for _, m := range s.methods {
			p("\t%sMethod%s: %v,", s.name, m.name, m.clientStream)
		}
		p("}")
	}
}
