// Command mvgserve serves saved MVG models over HTTP — and, with
// -grpc-addr, simultaneously over gRPC — with request coalescing:
// concurrent single-series predictions are merged into batches for the
// parallel extraction engine. Both transports are thin codecs over one
// shared serving engine, so responses are byte-identical regardless of
// which wire asked. See docs/serving.md for the endpoint contract, the
// gRPC surface and tuning guidance.
//
// Usage:
//
//	mvgserve -models ./models                     # serve every ./models/*.mvg on :8080
//	mvgserve -models ./models -addr :9000 -window 5ms -max-batch 128
//	mvgserve -models ./models -grpc-addr :8081    # gRPC (h2c) alongside HTTP
//	mvgserve -models ./models -workers 4 -shutdown-timeout 30s
//	mvgserve -models ./models -pprof 127.0.0.1:6060   # opt-in debug listener
//	mvgserve -models ./models -alert-webhook http://alerts.internal/hook -alert-log
//	mvgserve -models ./models -max-inflight 64 -max-queue 256 -request-timeout 30s
//	mvgserve -models ./models -max-streams 1024 -max-streams-per-tenant 64 -stream-idle-timeout 5m
//
// Overload behavior (docs/robustness.md): predict requests beyond
// -max-inflight wait in a bounded queue; beyond -max-queue they are shed
// with 429 + Retry-After (RESOURCE_EXHAUSTED over gRPC). Every predict
// request carries the -request-timeout deadline (503 on expiry). Streams
// are bounded by -max-streams / -max-streams-per-tenant (429 when full),
// idle-evicted after -stream-idle-timeout, and slow readers are cut off
// by -stream-write-timeout. /healthz reports readiness (shed state,
// stream and queue depth) for fleet health checks; the gRPC Health rpc
// reports the same snapshot.
//
// HTTP endpoints:
//
//	POST /v1/models/{name}/predict        {"series": [...]} or {"batch": [[...], ...]}
//	POST /v1/models/{name}/predict_proba  same bodies, probability vectors back
//	POST /v1/models/{name}/stream         NDJSON sliding-window dialogue: one sample
//	                                      per line in, one prediction per hop out
//	POST /v1/models/{name}/reload         atomically reload the model file
//	GET  /v1/models                       registry listing with feature metadata
//	GET  /healthz                         liveness
//	GET  /metrics                         Prometheus text metrics
//
// gRPC service (api/proto/mvg.proto, served over h2c on -grpc-addr):
//
//	mvg.v1.Mvg/Predict, PredictProba, PredictBatch, StreamPredict (bidi),
//	ListModels, Health
//
// On SIGTERM/SIGINT the server stops accepting connections on both
// transports, drains in-flight requests and coalesced batches, then
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvg"
	alertwebhook "mvg/internal/alert/webhook"
	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
	"mvg/internal/serve/grpcapi"
	"mvg/internal/serve/httpapi"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "HTTP listen address")
		grpcAddr        = flag.String("grpc-addr", "", "gRPC (h2c) listen address; empty disables the gRPC transport")
		modelDir        = flag.String("models", "", "directory of saved *.mvg models (required)")
		window          = flag.Duration("window", core.DefaultWindow, "coalescing window: how long the first request of a batch waits for company")
		maxBatch        = flag.Int("max-batch", core.DefaultMaxBatch, "flush a coalesced batch at this many pending requests")
		workers         = flag.Int("workers", 0, "worker goroutines per prediction batch (0 = GOMAXPROCS)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "maximum time to drain in-flight requests on SIGTERM")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this separate debug address (e.g. 127.0.0.1:6060); empty disables")
		alertWebhook    = flag.String("alert-webhook", "", "POST FIRING/RESOLVED alert events from ?alert= streams to this URL")
		alertLog        = flag.Bool("alert-log", false, "log FIRING/RESOLVED alert events as NDJSON on stderr")

		// Overload safety (docs/robustness.md).
		maxInFlight       = flag.Int("max-inflight", 64, "concurrently executing predict requests; 0 disables admission control")
		maxQueue          = flag.Int("max-queue", 256, "predict requests allowed to wait for a slot; beyond this they are shed with 429")
		requestTimeout    = flag.Duration("request-timeout", 30*time.Second, "server-side deadline per predict request, queue wait included (503 on expiry); 0 disables")
		retryAfter        = flag.Duration("retry-after", time.Second, "Retry-After hint attached to 429/503 shed and timeout responses")
		maxStreams        = flag.Int("max-streams", 1024, "concurrently open stream dialogues across all tenants; -1 = unlimited")
		maxTenantStreams  = flag.Int("max-streams-per-tenant", 64, "concurrently open streams per tenant (?tenant= or client IP); -1 = unlimited")
		streamIdleTimeout = flag.Duration("stream-idle-timeout", 5*time.Minute, "evict a stream that sends no sample for this long; -1s disables")
		streamWriteTo     = flag.Duration("stream-write-timeout", 10*time.Second, "evict a stream whose client stops reading for this long; -1s disables")
		readHeaderTo      = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout: how long a client may dribble request headers (slowloris guard)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "mvgserve: ", log.LstdFlags)
	if *modelDir == "" {
		fmt.Fprintln(os.Stderr, "mvgserve: -models is required")
		flag.Usage()
		os.Exit(2)
	}

	registry := core.NewRegistry()
	names, err := registry.LoadDir(*modelDir)
	if err != nil {
		logger.Fatal(err)
	}
	registry.SetWorkers(*workers)
	logger.Printf("loaded %d model(s) from %s: %v", len(names), *modelDir, names)

	// The alert sink is owned here, not by the engine: it is closed after
	// the full drain so events from in-flight stream dialogues still get
	// delivered (webhook Close waits out its bounded retry queue).
	var alertSink mvg.AlertSink
	{
		var sinks []mvg.AlertSink
		if *alertLog {
			sinks = append(sinks, mvg.NewAlertLogSink(os.Stderr))
		}
		if *alertWebhook != "" {
			hook, err := alertwebhook.New(alertwebhook.Config{
				URL:      *alertWebhook,
				Fallback: mvg.NewAlertLogSink(os.Stderr),
			})
			if err != nil {
				logger.Fatalf("alert webhook: %v", err)
			}
			sinks = append(sinks, hook)
		}
		if len(sinks) > 0 {
			alertSink = mvg.AlertFanout(sinks...)
			logger.Printf("alert sink: log=%v webhook=%q", *alertLog, *alertWebhook)
		}
	}

	// One engine, N transports: the registry, coalescers, admission
	// limiter, stream sessions and metrics are shared, so an HTTP predict
	// and a gRPC predict for the same series coalesce into the same batch
	// and return the same bytes.
	engine, err := core.NewEngine(core.Config{
		Registry:  registry,
		Window:    *window,
		MaxBatch:  *maxBatch,
		Logger:    logger,
		AlertSink: alertSink,

		MaxInFlight:         *maxInFlight,
		MaxQueue:            *maxQueue,
		RequestTimeout:      *requestTimeout,
		RetryAfter:          *retryAfter,
		MaxStreams:          *maxStreams,
		MaxStreamsPerTenant: *maxTenantStreams,
		StreamIdleTimeout:   *streamIdleTimeout,
		StreamWriteTimeout:  *streamWriteTo,
	})
	if err != nil {
		logger.Fatal(err)
	}
	srv := httpapi.NewServer(engine)

	// The profiling endpoints live on their own listener so they are never
	// reachable through the serving address: exposing pprof on the traffic
	// port would leak heap contents and allow trivial CPU-profile DoS. Bind
	// it to loopback (or a firewalled interface) and keep it off in
	// production unless actively debugging; see docs/serving.md.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Bind synchronously: -pprof is explicit opt-in, so a taken port or
		// mistyped address must fail startup, not scroll by in a log line
		// and surface as an unreachable profiler mid-incident.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			logger.Fatalf("pprof listener: %v", err)
		}
		debugSrv := &http.Server{Handler: mux}
		go func() {
			logger.Printf("pprof debug listener on %s", ln.Addr())
			if err := debugSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof listener: %v", err)
			}
		}()
		defer debugSrv.Close()
	}

	// Transport hardening: ReadHeaderTimeout caps how long a client may
	// dribble its request headers (the slowloris attack — hold sockets
	// open with one header byte at a time) and IdleTimeout reaps parked
	// keep-alive connections. WriteTimeout stays off deliberately: it is
	// per-connection, and the NDJSON stream endpoint legitimately writes
	// for the dialogue's whole lifetime — slow stream readers are handled
	// by per-write deadlines inside the handler instead (-stream-write-
	// timeout; docs/robustness.md).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: *readHeaderTo,
		IdleTimeout:       120 * time.Second,
	}
	// The moment Shutdown is called, every live stream dialogue is asked
	// to finish with a done event — otherwise connection-pinned streams
	// would hold the HTTP drain open until its timeout.
	httpSrv.RegisterOnShutdown(engine.DrainStreams)
	errc := make(chan error, 2)
	go func() {
		logger.Printf("listening on %s (window=%v max-batch=%d workers=%d)", *addr, *window, *maxBatch, *workers)
		errc <- httpSrv.ListenAndServe()
	}()

	// The gRPC transport is a second codec over the same engine, served on
	// its own h2c listener (gRPC requires HTTP/2; no TLS is assumed inside
	// the fleet perimeter).
	var grpcSrv *http.Server
	if *grpcAddr != "" {
		grpcSrv = grpcx.NewH2CServer(*grpcAddr, grpcapi.NewServer(engine))
		grpcSrv.ReadHeaderTimeout = *readHeaderTo
		grpcSrv.IdleTimeout = 120 * time.Second
		grpcSrv.RegisterOnShutdown(engine.DrainStreams)
		go func() {
			logger.Printf("grpc listening on %s", *grpcAddr)
			errc <- grpcSrv.ListenAndServe()
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		logger.Fatal(err)
	case sig := <-sigc:
		logger.Printf("received %v, draining (timeout %v)", sig, *shutdownTimeout)
	}

	// Drain order matters: first stop accepting connections on every
	// transport and let active handlers finish (they may be blocked on
	// coalesced batches, which stay open), then close the coalescers,
	// which flushes any pending batch. The coalescer drain gets its own
	// budget: if the transport drain consumed the whole timeout (handlers
	// parked in a long coalescing window), an already-expired context here
	// would abandon accepted requests.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), *shutdownTimeout)
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if grpcSrv != nil {
		if err := grpcSrv.Shutdown(httpCtx); err != nil {
			logger.Printf("grpc shutdown: %v", err)
		}
	}
	cancelHTTP()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancelDrain()
	if err := engine.Shutdown(drainCtx); err != nil {
		logger.Printf("%v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	if grpcSrv != nil {
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}
	if alertSink != nil {
		if err := alertSink.Close(); err != nil {
			logger.Printf("alert sink close: %v", err)
		}
	}
	logger.Printf("drained, bye")
}
