// Command mvgbench regenerates the paper's evaluation tables and figures
// (see EXPERIMENTS.md) on the synthetic dataset suite.
//
// Usage:
//
//	mvgbench -exp all                  # every experiment, quick mode
//	mvgbench -exp table3 -full         # one experiment at the paper's scale
//	mvgbench -exp table2 -datasets SynthECG,ChaosMaps -repeats 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mvg/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experiments.Experiments, ", ")+" or all")
		seed     = flag.Int64("seed", 1, "suite generation / training seed")
		full     = flag.Bool("full", false, "full-scale run (paper-sized grids and datasets); default is quick mode")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (default: all 13)")
		repeats  = flag.Int("repeats", 1, "repetitions to average accuracy over (the paper uses 5)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Out:     os.Stdout,
		Seed:    *seed,
		Quick:   !*full,
		Repeats: *repeats,
	}
	if *datasets != "" {
		for _, d := range strings.Split(*datasets, ",") {
			if d = strings.TrimSpace(d); d != "" {
				cfg.Datasets = append(cfg.Datasets, d)
			}
		}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("mvgbench: exp=%s mode=%s seed=%d repeats=%d\n\n", *exp, mode, *seed, cfg.Repeats)
	start := time.Now()
	if err := experiments.NewRunner(cfg).Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "mvgbench:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %.1fs\n", time.Since(start).Seconds())
}
