// Command vgviz renders a time series and its visibility graphs as ASCII
// art — the paper's Figure 1. Values are read from the command line or a
// built-in demo series is used.
//
// Usage:
//
//	vgviz                              # demo series
//	vgviz 0.8 0.2 0.6 0.9 0.1 0.5     # custom series
//	vgviz -kind hvg 3 1 2 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mvg"
)

func main() {
	kind := flag.String("kind", "both", "graph to draw: vg, hvg or both")
	flag.Parse()

	series := []float64{0.87, 0.49, 0.36, 0.83, 0.87, 0.49, 0.36, 0.83, 0.87,
		0.49, 0.36, 0.83, 0.32, 0.56, 0.25, 0.35, 0.2, 0.96, 0.15, 0.34, 0.7}
	if args := flag.Args(); len(args) > 0 {
		series = series[:0]
		for _, a := range args {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vgviz: bad value %q: %v\n", a, err)
				os.Exit(2)
			}
			series = append(series, v)
		}
	}

	drawSeries(series)
	if *kind == "vg" || *kind == "both" {
		s, err := mvg.SummarizeVG(series)
		if err != nil {
			fatal(err)
		}
		drawGraph(s)
	}
	if *kind == "hvg" || *kind == "both" {
		s, err := mvg.SummarizeHVG(series)
		if err != nil {
			fatal(err)
		}
		drawGraph(s)
	}
}

// drawSeries renders the bar-landscape view of the series.
func drawSeries(t []float64) {
	const rows = 12
	lo, hi := t[0], t[0]
	for _, v := range t {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	heights := make([]int, len(t))
	for i, v := range t {
		heights[i] = 1 + int((v-lo)/span*(rows-1))
	}
	fmt.Println("series as vertical bars:")
	for r := rows; r >= 1; r-- {
		var sb strings.Builder
		for _, h := range heights {
			if h >= r {
				sb.WriteString(" █")
			} else {
				sb.WriteString("  ")
			}
		}
		fmt.Println(sb.String())
	}
	var idx strings.Builder
	for i := range t {
		idx.WriteString(fmt.Sprintf("%2d", i%10))
	}
	fmt.Println(idx.String())
	fmt.Println()
}

// drawGraph prints the arc diagram and summary statistics of one graph.
func drawGraph(s mvg.GraphSummary) {
	fmt.Printf("%s: %d vertices, %d edges, density %.3f, assortativity %.3f, k-core %d, degrees [%d..%d] mean %.2f\n",
		s.Kind, s.N, s.M, s.Density, s.Assortativity, s.KCore, s.MinDegree, s.MaxDegree, s.MeanDegree)
	// Arc diagram: one line per edge span beyond adjacent pairs.
	fmt.Println("edges (arc view; adjacent-pair edges omitted):")
	for _, e := range s.Edges {
		if e[1]-e[0] == 1 {
			continue
		}
		var sb strings.Builder
		sb.WriteString(strings.Repeat("  ", e[0]))
		sb.WriteString(" ┌")
		sb.WriteString(strings.Repeat("──", e[1]-e[0]-1))
		sb.WriteString("─┐")
		fmt.Printf("%s  (%d–%d)\n", sb.String(), e[0], e[1])
	}
	fmt.Println("motif probabilities (connected 4-motifs):")
	for _, name := range []string{"M41", "M42", "M43", "M44", "M45", "M46"} {
		fmt.Printf("  P(%s) = %.4f\n", name, s.MotifProbabilities[name])
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vgviz:", err)
	os.Exit(1)
}
