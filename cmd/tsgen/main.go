// Command tsgen writes the synthetic dataset suite to disk in UCR format
// (one <Name>_TRAIN and <Name>_TEST file per family), so external tools —
// or mvgcli — can consume the same benchmark data.
//
// Usage:
//
//	tsgen -out ./data                  # all 13 families
//	tsgen -out ./data -dataset ChaosMaps -seed 7
//	tsgen -list
//
// Bulk mode (-rows) streams an arbitrarily large single-family dataset to
// one UCR file without holding it in memory — the generator feed for
// `mvgcli extract` (docs/bulk.md):
//
//	tsgen -rows 100000 -dataset SynthECG -out huge_TRAIN
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mvg/internal/synth"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory; with -rows, output file (required unless -list)")
		dataset = flag.String("dataset", "", "generate a single family (default: all; required with -rows)")
		seed    = flag.Int64("seed", 1, "generation seed")
		rows    = flag.Int("rows", 0, "bulk mode: stream this many rows of one family to the -out file")
		list    = flag.Bool("list", false, "list available dataset families and exit")
	)
	flag.Parse()

	if *rows > 0 {
		if *out == "" || *dataset == "" {
			flag.Usage()
			os.Exit(2)
		}
		f, err := synth.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		if err := emitBulk(f, *rows, *seed, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d rows of %s (length %d, %d classes)\n",
			*out, *rows, f.Name, f.Length, f.Classes)
		return
	}

	if *list {
		fmt.Printf("%-16s %5s %7s %6s %6s  %s\n", "NAME", "#CLS", "LENGTH", "TRAIN", "TEST", "MOTIVATION")
		for _, f := range synth.Suite() {
			fmt.Printf("%-16s %5d %7d %6d %6d  %s\n",
				f.Name, f.Classes, f.Length, f.TrainSize, f.TestSize, f.Motivation)
		}
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	fams := synth.Suite()
	if *dataset != "" {
		f, err := synth.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		fams = []synth.Family{f}
	}
	for _, f := range fams {
		train, test := f.Generate(*seed)
		trainPath := filepath.Join(*out, f.Name+"_TRAIN")
		testPath := filepath.Join(*out, f.Name+"_TEST")
		if err := train.WriteFile(trainPath); err != nil {
			fatal(err)
		}
		if err := test.WriteFile(testPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d train, %d test, %d classes, length %d)\n",
			f.Name, train.Len(), test.Len(), train.Classes(), train.SeriesLength())
	}
}

// emitBulk streams rows UCR lines to path through EmitRows: one series
// in memory at a time, the same "label,v1,..." format ucr.Write uses.
func emitBulk(f synth.Family, rows int, seed int64, path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(out, 1<<20)
	err = f.EmitRows(rows, seed, func(label string, series []float64) error {
		if _, err := bw.WriteString(label); err != nil {
			return err
		}
		for _, v := range series {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		out.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgen:", err)
	os.Exit(1)
}
