// Command tsgen writes the synthetic dataset suite to disk in UCR format
// (one <Name>_TRAIN and <Name>_TEST file per family), so external tools —
// or mvgcli — can consume the same benchmark data.
//
// Usage:
//
//	tsgen -out ./data                  # all 13 families
//	tsgen -out ./data -dataset ChaosMaps -seed 7
//	tsgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mvg/internal/synth"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory (required unless -list)")
		dataset = flag.String("dataset", "", "generate a single family (default: all)")
		seed    = flag.Int64("seed", 1, "generation seed")
		list    = flag.Bool("list", false, "list available dataset families and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-16s %5s %7s %6s %6s  %s\n", "NAME", "#CLS", "LENGTH", "TRAIN", "TEST", "MOTIVATION")
		for _, f := range synth.Suite() {
			fmt.Printf("%-16s %5d %7d %6d %6d  %s\n",
				f.Name, f.Classes, f.Length, f.TrainSize, f.TestSize, f.Motivation)
		}
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	fams := synth.Suite()
	if *dataset != "" {
		f, err := synth.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		fams = []synth.Family{f}
	}
	for _, f := range fams {
		train, test := f.Generate(*seed)
		trainPath := filepath.Join(*out, f.Name+"_TRAIN")
		testPath := filepath.Join(*out, f.Name+"_TEST")
		if err := train.WriteFile(trainPath); err != nil {
			fatal(err)
		}
		if err := test.WriteFile(testPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d train, %d test, %d classes, length %d)\n",
			f.Name, train.Len(), test.Len(), train.Classes(), train.SeriesLength())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tsgen:", err)
	os.Exit(1)
}
