// Command mvgcli trains and evaluates an MVG classifier on UCR-format
// dataset files (label,v1,...,vn per line).
//
// Usage:
//
//	mvgcli -train Coffee_TRAIN -test Coffee_TEST
//	mvgcli -train X_TRAIN -test X_TEST -classifier stack -oversample
//	mvgcli -train X_TRAIN -test X_TEST -importance 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mvg"
	"mvg/internal/ucr"
)

func main() {
	var (
		trainPath  = flag.String("train", "", "UCR-format training file (required)")
		testPath   = flag.String("test", "", "UCR-format test file (required)")
		classifier = flag.String("classifier", "xgb", "classifier: xgb, rf, svm or stack")
		scale      = flag.String("scale", "mvg", "representation: mvg, uvg or amvg")
		graphs     = flag.String("graphs", "both", "graphs per scale: both, vg or hvg")
		features   = flag.String("features", "all", "per-graph features: all or mpds")
		fullGrid   = flag.Bool("fullgrid", false, "use the paper's full hyper-parameter grid")
		oversample = flag.Bool("oversample", false, "randomly oversample minority classes")
		seed       = flag.Int64("seed", 1, "training seed")
		importance = flag.Int("importance", 0, "print the top-N most important features (xgb only)")
		savePath   = flag.String("save", "", "write the trained model to this file (xgb only)")
		loadPath   = flag.String("load", "", "load a saved model instead of training")
	)
	flag.Parse()
	if (*trainPath == "" && *loadPath == "") || *testPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var model *mvg.Model
	var trainSec float64
	cfg := mvg.Config{
		Scale:      *scale,
		Graphs:     *graphs,
		Features:   *features,
		Classifier: *classifier,
		FullGrid:   *fullGrid,
		Oversample: *oversample,
		Seed:       *seed,
	}

	var train *ucr.Dataset
	test, err := ucr.ReadFile(*testPath)
	if err != nil {
		fatal(err)
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		model, err = mvg.LoadModel(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded model from %s; test: %d samples\n", *loadPath, test.Len())
	} else {
		train, test, err = ucr.ReadPair(*trainPath, *testPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("train: %d samples, test: %d samples, %d classes, length %d\n",
			train.Len(), test.Len(), train.Classes(), train.SeriesLength())
		t0 := time.Now()
		pipe, err := mvg.NewPipeline(cfg)
		if err != nil {
			fatal(err)
		}
		model, err = pipe.Train(context.Background(), train.Series, train.Labels, train.Classes())
		if err != nil {
			fatal(err)
		}
		trainSec = time.Since(t0).Seconds()
	}

	t1 := time.Now()
	errRate, err := model.ErrorRate(context.Background(), test.Series, test.Labels)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("error rate: %.4f (accuracy %.4f)\n", errRate, 1-errRate)
	fmt.Printf("train %.2fs, test %.2fs\n", trainSec, time.Since(t1).Seconds())

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *savePath)
	}

	if *importance > 0 {
		weights, err := model.FeatureImportance()
		if err != nil {
			fatal(err)
		}
		n := *importance
		if n > len(weights) {
			n = len(weights)
		}
		fmt.Println("top features by gain:")
		for _, fw := range weights[:n] {
			fmt.Printf("  %-24s %.4f\n", fw.Name, fw.Weight)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mvgcli:", err)
	os.Exit(1)
}
