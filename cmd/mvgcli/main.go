// Command mvgcli trains, evaluates, and serves MVG classifiers from the
// command line.
//
// The default mode trains/evaluates on UCR-format dataset files
// (label,v1,...,vn per line):
//
//	mvgcli -train Coffee_TRAIN -test Coffee_TEST
//	mvgcli -train X_TRAIN -test X_TEST -classifier stack -oversample
//	mvgcli -train X_TRAIN -test X_TEST -importance 10
//	mvgcli -train X_TRAIN -test X_TEST -save model.mvg
//
// The extract subcommand streams a dataset of any size into an on-disk
// columnar feature store with bounded memory, and validate proves a store
// back against its manifest (and, with -data, against a fresh
// re-extraction of sampled rows; see docs/bulk.md). -from-store trains
// from precomputed features, skipping extraction entirely:
//
//	mvgcli extract -data Huge_TRAIN -out store/
//	mvgcli validate -store store/ -data Huge_TRAIN
//	mvgcli -from-store store/ -test Huge_TEST -classifier rf
//
// The stream subcommand runs a saved model over a live sample feed — one
// sample per line on stdin, one NDJSON prediction per hop on stdout (the
// same protocol as mvgserve's /stream endpoint; see docs/streaming.md):
//
//	some-sensor | mvgcli stream -load model.mvg -hop 8
//
// -alert arms alert triggers on the stream (state transitions interleave
// as NDJSON alert lines; docs/alerting.md), and -webhook additionally
// POSTs FIRING/RESOLVED events to an HTTP endpoint:
//
//	some-sensor | mvgcli stream -load model.mvg -hop 8 \
//	    -alert "kind=proba,class=1,rise=0.9,clear=0.6" \
//	    -webhook http://alerts.internal/hook
//
// The predict subcommand sends one series to a running mvgserve (or an
// mvgproxy fleet) and prints the prediction as a JSON line — over HTTP
// with -addr or over gRPC with -grpc-addr, both rendered in the same
// schema so the transports can be diffed directly (docs/serving.md):
//
//	echo "$SERIES" | mvgcli predict -addr localhost:8080 -model shapes
//	echo "$SERIES" | mvgcli predict -grpc-addr localhost:9091 -model shapes -proba
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mvg"
	alertwebhook "mvg/internal/alert/webhook"
	"mvg/internal/serve/core"
	"mvg/internal/ucr"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable entry point: it dispatches subcommands and
// returns the process exit code (0 ok, 1 runtime failure, 2 usage).
func realMain(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "stream":
			return runStream(args[1:], stdout, stderr)
		case "extract":
			return runExtract(args[1:], stdout, stderr)
		case "validate":
			return runValidate(args[1:], stdout, stderr)
		case "predict":
			return runPredict(args[1:], stdout, stderr)
		}
	}
	return runTrainEval(args, stdout, stderr)
}

func runTrainEval(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mvgcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		trainPath  = fs.String("train", "", "UCR-format training file (required unless -load)")
		testPath   = fs.String("test", "", "UCR-format test file (required)")
		classifier = fs.String("classifier", "xgb", "classifier: xgb, rf, svm or stack")
		scale      = fs.String("scale", "mvg", "representation: mvg, uvg or amvg")
		graphs     = fs.String("graphs", "both", "graphs per scale: both, vg or hvg")
		features   = fs.String("features", "all", "per-graph features: all or mpds")
		fullGrid   = fs.Bool("fullgrid", false, "use the paper's full hyper-parameter grid")
		oversample = fs.Bool("oversample", false, "randomly oversample minority classes")
		noDetrend  = fs.Bool("no-detrend", false, "skip least-squares detrending (set for streaming models)")
		noZNorm    = fs.Bool("no-znormalize", false, "skip z-normalization (set for streaming models)")
		seed       = fs.Int64("seed", 1, "training seed")
		importance = fs.Int("importance", 0, "print the top-N most important features (xgb only)")
		savePath   = fs.String("save", "", "write the trained model to this file (xgb only)")
		loadPath   = fs.String("load", "", "load a saved model instead of training")
		fromStore  = fs.String("from-store", "", "train from a feature store built by `mvgcli extract` instead of raw series")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*trainPath == "" && *loadPath == "" && *fromStore == "") || *testPath == "" {
		fs.Usage()
		return 2
	}

	var model *mvg.Model
	var trainSec float64
	cfg := mvg.Config{
		Scale:        *scale,
		Graphs:       *graphs,
		Features:     *features,
		Classifier:   *classifier,
		FullGrid:     *fullGrid,
		Oversample:   *oversample,
		NoDetrend:    *noDetrend,
		NoZNormalize: *noZNorm,
		Seed:         *seed,
	}

	var train *ucr.Dataset
	test, err := ucr.ReadFile(*testPath)
	if err != nil {
		return fail(stderr, err)
	}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return fail(stderr, err)
		}
		model, err = mvg.LoadModel(f)
		f.Close()
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "loaded model from %s; test: %d samples\n", *loadPath, test.Len())
	} else if *fromStore != "" {
		store, err := mvg.OpenFeatureStore(*fromStore)
		if err != nil {
			return fail(stderr, err)
		}
		// Extraction settings come from the store's manifest — they are
		// what the features were computed under; flags only steer the
		// classifier half of the config.
		storeCfg, err := store.ExtractionConfig()
		if err != nil {
			return fail(stderr, err)
		}
		storeCfg.Classifier = cfg.Classifier
		storeCfg.FullGrid = cfg.FullGrid
		storeCfg.Oversample = cfg.Oversample
		storeCfg.Seed = cfg.Seed
		// The store maps classes in first-seen input order, the UCR reader
		// in sorted order; realign the test labels to the store's ids.
		if test.Labels, err = remapLabels(test, store.ClassNames()); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "store: %d rows, %d features, %d classes; test: %d samples\n",
			store.Rows(), store.Cols(), len(store.ClassNames()), test.Len())
		t0 := time.Now()
		model, err = store.Train(context.Background(), storeCfg)
		if err != nil {
			return fail(stderr, err)
		}
		trainSec = time.Since(t0).Seconds()
	} else {
		train, test, err = ucr.ReadPair(*trainPath, *testPath)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "train: %d samples, test: %d samples, %d classes, length %d\n",
			train.Len(), test.Len(), train.Classes(), train.SeriesLength())
		t0 := time.Now()
		pipe, err := mvg.NewPipeline(cfg)
		if err != nil {
			return fail(stderr, err)
		}
		model, err = pipe.Train(context.Background(), train.Series, train.Labels, train.Classes())
		if err != nil {
			return fail(stderr, err)
		}
		trainSec = time.Since(t0).Seconds()
	}

	t1 := time.Now()
	errRate, err := model.ErrorRate(context.Background(), test.Series, test.Labels)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "error rate: %.4f (accuracy %.4f)\n", errRate, 1-errRate)
	fmt.Fprintf(stdout, "train %.2fs, test %.2fs\n", trainSec, time.Since(t1).Seconds())

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return fail(stderr, err)
		}
		if err := model.Save(f); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		if err := f.Close(); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "model saved to %s\n", *savePath)
	}

	if *importance > 0 {
		weights, err := model.FeatureImportance()
		if err != nil {
			return fail(stderr, err)
		}
		n := *importance
		if n > len(weights) {
			n = len(weights)
		}
		fmt.Fprintln(stdout, "top features by gain:")
		for _, fw := range weights[:n] {
			fmt.Fprintf(stdout, "  %-24s %.4f\n", fw.Name, fw.Weight)
		}
	}
	return 0
}

func runStream(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mvgcli stream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		loadPath   = fs.String("load", "", "saved model to stream against (required)")
		hop        = fs.Int("hop", 1, "emit one prediction every N samples once the window is full")
		inPath     = fs.String("in", "", "sample source, one number per line (default stdin)")
		alertSpecs = fs.String("alert", "", "';'-separated alert trigger specs (docs/alerting.md#trigger-specs)")
		webhook    = fs.String("webhook", "", "POST FIRING/RESOLVED alert events to this URL (requires -alert)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *loadPath == "" || (*webhook != "" && *alertSpecs == "") {
		fs.Usage()
		return 2
	}
	f, err := os.Open(*loadPath)
	if err != nil {
		return fail(stderr, err)
	}
	model, err := mvg.LoadModel(f)
	f.Close()
	if err != nil {
		return fail(stderr, err)
	}
	stream, err := model.NewStream(*hop)
	if err != nil {
		return fail(stderr, err)
	}
	if *alertSpecs != "" {
		triggers, err := mvg.ParseAlertTriggers(*alertSpecs)
		if err != nil {
			return fail(stderr, err)
		}
		if err := stream.SetAlerts(triggers...); err != nil {
			return fail(stderr, err)
		}
	}
	var sink mvg.AlertSink
	if *webhook != "" {
		// Events the webhook cannot take (full queue, open breaker,
		// exhausted retries) fall back to stderr so nothing vanishes.
		sink, err = alertwebhook.New(alertwebhook.Config{
			URL:      *webhook,
			Fallback: mvg.NewAlertLogSink(stderr),
		})
		if err != nil {
			return fail(stderr, err)
		}
		// Close drains queued events (bounded by retry policy) on exit.
		defer sink.Close()
	}
	modelName := strings.TrimSuffix(filepath.Base(*loadPath), filepath.Ext(*loadPath))

	var in io.Reader = os.Stdin
	if *inPath != "" {
		sf, err := os.Open(*inPath)
		if err != nil {
			return fail(stderr, err)
		}
		defer sf.Close()
		in = sf
	}
	fmt.Fprintf(stderr, "mvgcli: streaming window=%d hop=%d incremental=%v\n",
		stream.WindowLen(), stream.Hop(), stream.Incremental())

	out := bufio.NewWriter(stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		x, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return fail(stderr, fmt.Errorf("sample %d: not a number: %q", stream.Pushed(), line))
		}
		ready, err := stream.Push(x)
		if err != nil {
			return fail(stderr, err)
		}
		if !ready {
			continue
		}
		pt, err := stream.PredictAlert(context.Background())
		if err != nil {
			return fail(stderr, err)
		}
		// core.StreamPrediction / StreamAlertEvent are the shared line
		// types of mvgserve's /stream endpoint — one protocol, one
		// definition. Sample is samples-consumed on the wire.
		pred := core.StreamPrediction{Sample: stream.Pushed(), Class: pt.Class, Proba: pt.Proba}
		if pt.HasDrift {
			pred.Drift = &pt.Drift
		}
		if err := enc.Encode(pred); err != nil {
			return fail(stderr, err)
		}
		for _, tr := range pt.Transitions {
			ev := core.StreamAlertEvent{
				Alert: tr.Trigger, From: tr.From.String(), To: tr.To.String(),
				Sample: tr.Sample + 1, Value: tr.Value,
			}
			if err := enc.Encode(ev); err != nil {
				return fail(stderr, err)
			}
			if sink != nil && (tr.To == mvg.AlertFiring || tr.To == mvg.AlertResolved) {
				sink.Deliver(mvg.AlertEvent{
					Model: modelName, Trigger: tr.Trigger,
					From: ev.From, To: ev.To,
					Sample: ev.Sample, Value: ev.Value, At: time.Now().UTC(),
				})
			}
		}
		// One line per hop, delivered as it happens: flush so a pipe
		// consumer sees predictions live, not on exit.
		if err := out.Flush(); err != nil {
			return fail(stderr, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// remapLabels translates a UCR dataset's dense labels (sorted-token
// order) into a feature store's class ids (first-seen order), failing on
// tokens the store never saw.
func remapLabels(d *ucr.Dataset, storeClasses []string) ([]int, error) {
	id := make(map[string]int, len(storeClasses))
	for i, tok := range storeClasses {
		id[tok] = i
	}
	out := make([]int, len(d.Labels))
	for i, lab := range d.Labels {
		tok := d.ClassNames[lab]
		mapped, ok := id[tok]
		if !ok {
			return nil, fmt.Errorf("test label %q is not a class of the feature store (store classes: %s)",
				tok, strings.Join(storeClasses, ", "))
		}
		out[i] = mapped
	}
	return out, nil
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "mvgcli:", err)
	return 1
}
