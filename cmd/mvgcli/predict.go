package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"mvg/api/mvgpb"
	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
)

// runPredict is the remote-inference subcommand: it reads one series,
// sends it to a running mvgserve (or an mvgproxy fronting a fleet) over
// either transport, and prints the prediction as one JSON line in the
// HTTP response schema. Because the gRPC reply is re-rendered into that
// same schema, piping the two modes through diff is a live check of the
// cross-transport byte-identical guarantee (docs/serving.md).
func runPredict(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mvgcli predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		httpAddr = fs.String("addr", "", "predict over HTTP/JSON against this host:port")
		grpcAddr = fs.String("grpc-addr", "", "predict over gRPC against this host:port")
		model    = fs.String("model", "", "model name to predict with (required)")
		proba    = fs.Bool("proba", false, "request class probabilities instead of the class label")
		inPath   = fs.String("in", "", "series source, numbers separated by commas or whitespace (default stdin)")
		tenant   = fs.String("tenant", "", "tenant id to send (HTTP ?tenant= / gRPC mvg-tenant metadata)")
		timeout  = fs.Duration("timeout", 30*time.Second, "request deadline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *model == "" || (*httpAddr == "") == (*grpcAddr == "") {
		fmt.Fprintln(stderr, "mvgcli predict: -model and exactly one of -addr or -grpc-addr are required")
		fs.Usage()
		return 2
	}
	series, err := readSeries(*inPath)
	if err != nil {
		return fail(stderr, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var line any
	if *httpAddr != "" {
		line, err = predictHTTP(ctx, *httpAddr, *model, *tenant, series, *proba)
	} else {
		line, err = predictGRPC(ctx, *grpcAddr, *model, *tenant, series, *proba)
	}
	if err != nil {
		return fail(stderr, err)
	}
	if err := json.NewEncoder(stdout).Encode(line); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// predictLine is the output schema — the HTTP single-series response
// shape of both predict endpoints (httpapi's predictResponse /
// probaResponse), which the gRPC reply is normalised into.
type predictLine struct {
	Model     string    `json:"model"`
	Class     *int      `json:"class,omitempty"`
	Proba     []float64 `json:"proba,omitempty"`
	Coalesced bool      `json:"coalesced,omitempty"`
}

func predictHTTP(ctx context.Context, addr, model, tenant string, series []float64, proba bool) (*predictLine, error) {
	endpoint := "predict"
	if proba {
		endpoint = "predict_proba"
	}
	u := "http://" + addr + "/v1/models/" + url.PathEscape(model) + "/" + endpoint
	if tenant != "" {
		u += "?" + core.TenantParam + "=" + url.QueryEscape(tenant)
	}
	body, err := json.Marshal(map[string]any{"series": series})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var line predictLine
	if err := json.Unmarshal(raw, &line); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &line, nil
}

func predictGRPC(ctx context.Context, addr, model, tenant string, series []float64, proba bool) (*predictLine, error) {
	c := grpcx.Dial(addr)
	defer c.Close()
	var md map[string]string
	if tenant != "" {
		md = map[string]string{core.TenantMetadataKey: tenant}
	}
	req := &mvgpb.PredictRequest{Model: model, Series: series}
	if proba {
		var resp mvgpb.PredictProbaResponse
		if err := c.Invoke(ctx, mvgpb.MvgMethodPredictProba, md, req, &resp); err != nil {
			return nil, err
		}
		return &predictLine{Model: resp.Model, Proba: resp.Proba, Coalesced: resp.Coalesced}, nil
	}
	var resp mvgpb.PredictResponse
	if err := c.Invoke(ctx, mvgpb.MvgMethodPredict, md, req, &resp); err != nil {
		return nil, err
	}
	class := int(resp.Class)
	return &predictLine{Model: resp.Model, Class: &class, Coalesced: resp.Coalesced}, nil
}

// readSeries parses one series — numbers separated by commas and/or
// whitespace — from path or stdin.
func readSeries(path string) ([]float64, error) {
	var in io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	fields := strings.FieldsFunc(string(raw), func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("no series values on input")
	}
	series := make([]float64, len(fields))
	for i, tok := range fields {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("series value %d: not a number: %q", i, tok)
		}
		series[i] = v
	}
	return series, nil
}
