package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mvg/internal/serve/core"
)

// TestMain doubles as the binary: when re-executed with MVGCLI_EXEC=1 the
// test binary runs realMain directly, which is what lets the os/exec
// round-trip below exercise the real process boundary (exit codes,
// stdio) without compiling a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("MVGCLI_EXEC") == "1" {
		os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// writeUCR writes a small two-class UCR-format dataset (smooth sine vs
// noise) to path and returns the series length.
func writeUCR(t *testing.T, path string, perClass, length int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < perClass; i++ {
		b.WriteString("1")
		phase := rng.Float64()
		for k := 0; k < length; k++ {
			fmt.Fprintf(&b, ",%g", math.Sin(2*math.Pi*(float64(k)/8+phase))+0.05*rng.NormFloat64())
		}
		b.WriteString("\n2")
		for k := 0; k < length; k++ {
			fmt.Fprintf(&b, ",%g", rng.NormFloat64())
		}
		b.WriteString("\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTrainSavePredictRoundTrip is the CLI smoke test: train → save →
// reload → evaluate → stream, on a temp dir, through the in-process entry
// point (so the coverage job sees the CLI paths).
func TestTrainSavePredictRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "toy_TRAIN")
	testPath := filepath.Join(dir, "toy_TEST")
	modelPath := filepath.Join(dir, "toy.mvg")
	const length = 64
	writeUCR(t, trainPath, 6, length, 1)
	writeUCR(t, testPath, 4, length, 2)

	var stdout, stderr bytes.Buffer
	code := realMain([]string{
		"-train", trainPath, "-test", testPath, "-save", modelPath, "-seed", "7",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("train exit = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"train: 12 samples", "error rate:", "model saved to"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("train output missing %q:\n%s", want, stdout.String())
		}
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatalf("saved model missing: %v", err)
	}

	stdout.Reset()
	stderr.Reset()
	code = realMain([]string{"-load", modelPath, "-test", testPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("load exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "loaded model from") {
		t.Fatalf("load output:\n%s", stdout.String())
	}

	// Stream the test file's first series through the saved model.
	samples := filepath.Join(dir, "samples.txt")
	raw, err := os.ReadFile(testPath)
	if err != nil {
		t.Fatal(err)
	}
	line := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)[0]
	fields := strings.Split(line, ",")[1:] // drop the label
	if err := os.WriteFile(samples, []byte(strings.Join(fields, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code = realMain([]string{"stream", "-load", modelPath, "-hop", "16", "-in", samples}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("stream exit = %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 { // length == window, so exactly one hop fires
		t.Fatalf("stream emitted %d lines, want 1:\n%s", len(lines), stdout.String())
	}
	var pred core.StreamPrediction
	if err := json.Unmarshal([]byte(lines[0]), &pred); err != nil {
		t.Fatalf("bad NDJSON %q: %v", lines[0], err)
	}
	if pred.Sample != length || len(pred.Proba) != 2 {
		t.Fatalf("prediction = %+v, want sample %d with 2 probas", pred, length)
	}
	if pred.Drift == nil {
		t.Fatalf("prediction %+v lacks drift (trained models carry a baseline)", pred)
	}

	// Alerting leg: stream sine→noise→sine through a flip trigger. The
	// class flip fires and resolves on the wire, and -webhook delivers
	// the FIRING/RESOLVED events to a capture server.
	var mu sync.Mutex
	var hooks []string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		hooks = append(hooks, string(body))
		mu.Unlock()
	}))
	defer hs.Close()

	var sine, noise []string
	for _, row := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Split(row, ",")
		if fields[0] == "1" && sine == nil {
			sine = fields[1:]
		}
		if fields[0] == "2" && noise == nil {
			noise = fields[1:]
		}
	}
	flip := append(append(append([]string{}, sine...), noise...), sine...)
	flipPath := filepath.Join(dir, "flip.txt")
	if err := os.WriteFile(flipPath, []byte(strings.Join(flip, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code = realMain([]string{
		"stream", "-load", modelPath, "-hop", "16", "-in", flipPath,
		"-alert", "kind=flip", "-webhook", hs.URL,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("alert stream exit = %d, stderr: %s", code, stderr.String())
	}
	var firing, resolved int
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var ev core.StreamAlertEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Alert == "" {
			continue
		}
		switch ev.To {
		case "FIRING":
			firing++
		case "RESOLVED":
			resolved++
		}
	}
	if firing == 0 || resolved == 0 {
		t.Fatalf("want FIRING and RESOLVED alert lines, got %d/%d:\n%s", firing, resolved, stdout.String())
	}
	// runStream closes the sink before returning, so every delivery has
	// landed by now; the model name is the file base without extension.
	mu.Lock()
	defer mu.Unlock()
	if len(hooks) != firing+resolved {
		t.Fatalf("webhook got %d deliveries, wire carried %d", len(hooks), firing+resolved)
	}
	for _, h := range hooks {
		if !strings.Contains(h, `"model":"toy"`) || !strings.Contains(h, `"trigger":"flip"`) {
			t.Fatalf("webhook payload %q lacks model/trigger", h)
		}
	}

	// A malformed -alert spec is a runtime failure (exit 1), not a crash.
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{
		"stream", "-load", modelPath, "-in", flipPath, "-alert", "kind=nope",
	}, &stdout, &stderr); code != 1 || !strings.Contains(stderr.String(), "trigger") {
		t.Fatalf("bad -alert exit = %d, stderr: %s", code, stderr.String())
	}
}

// TestExecUsageAndErrors exercises the true process boundary via os/exec
// re-execution: usage errors exit 2, runtime errors exit 1.
func TestExecUsageAndErrors(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Skip("no executable path:", err)
	}
	run := func(args ...string) (int, string) {
		cmd := exec.Command(exe, args...)
		cmd.Env = append(os.Environ(), "MVGCLI_EXEC=1")
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatal(err)
		}
		return code, out.String()
	}

	if code, _ := run(); code != 2 {
		t.Fatalf("no args exit = %d, want 2", code)
	}
	if code, _ := run("stream"); code != 2 {
		t.Fatalf("stream without -load exit = %d, want 2", code)
	}
	if code, _ := run("stream", "-load", "x.mvg", "-webhook", "http://localhost:1"); code != 2 {
		t.Fatalf("stream -webhook without -alert exit = %d, want 2", code)
	}
	if code, out := run("-train", "/does/not/exist", "-test", "/does/not/exist"); code != 1 || !strings.Contains(out, "mvgcli:") {
		t.Fatalf("missing files exit = %d output %q, want 1 with mvgcli: prefix", code, out)
	}
	if code, _ := run("stream", "-load", "/does/not/exist"); code != 1 {
		t.Fatalf("stream with missing model exit = %d, want 1", code)
	}
}
