package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExtractValidateTrainFromStore is the bulk pipeline's CLI smoke
// test: extract a UCR file into a store, resume it (everything skipped),
// validate with the parity check, train from the store, and finally
// prove validate fails on a corrupted shard.
func TestExtractValidateTrainFromStore(t *testing.T) {
	dir := t.TempDir()
	trainPath := filepath.Join(dir, "toy_TRAIN")
	testPath := filepath.Join(dir, "toy_TEST")
	storeDir := filepath.Join(dir, "store")
	const length = 64
	writeUCR(t, trainPath, 6, length, 1)
	writeUCR(t, testPath, 4, length, 2)

	var stdout, stderr bytes.Buffer
	run := func(args ...string) int {
		stdout.Reset()
		stderr.Reset()
		return realMain(args, &stdout, &stderr)
	}

	if code := run("extract", "-data", trainPath, "-out", storeDir, "-chunk", "5", "-workers", "2"); code != 0 {
		t.Fatalf("extract exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "12 rows in 3 chunks (3 extracted, 0 resumed)") {
		t.Fatalf("extract output:\n%s", stdout.String())
	}

	// A rerun resumes: every chunk verifies and nothing is recomputed.
	if code := run("extract", "-data", trainPath, "-out", storeDir, "-chunk", "5"); code != 0 {
		t.Fatalf("resume exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "(0 extracted, 3 resumed)") {
		t.Fatalf("resume output:\n%s", stdout.String())
	}

	if code := run("validate", "-store", storeDir, "-data", trainPath, "-chunk", "5", "-workers", "2"); code != 0 {
		t.Fatalf("validate exit = %d, stderr: %s\n%s", code, stderr.String(), stdout.String())
	}
	for _, want := range []string{"ok   manifest", "ok   parity", "store is valid"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("validate output missing %q:\n%s", want, stdout.String())
		}
	}

	if code := run("-from-store", storeDir, "-test", testPath, "-classifier", "rf", "-seed", "7"); code != 0 {
		t.Fatalf("from-store train exit = %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"store: 12 rows", "error rate:"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("from-store output missing %q:\n%s", want, stdout.String())
		}
	}

	// Corrupt one shard byte: structural validation must fail with exit 1.
	shard := filepath.Join(storeDir, "shard-000001.fm")
	b, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(shard, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run("validate", "-store", storeDir); code != 1 {
		t.Fatalf("validate of corrupt store exit = %d, want 1\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "store is INVALID") {
		t.Fatalf("corrupt validate output:\n%s", stdout.String())
	}
}

// TestExtractNDJSONAutoFormat: .ndjson extension selects the NDJSON
// parser without -format.
func TestExtractNDJSONAutoFormat(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "feed.ndjson")
	var b strings.Builder
	for i := 0; i < 8; i++ {
		b.WriteString(`{"label": "x", "series": [`)
		for k := 0; k < 64; k++ {
			if k > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%g", math.Sin(float64(i*64+k)/3))
		}
		b.WriteString("]}\n")
	}
	if err := os.WriteFile(data, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := realMain([]string{"extract", "-data", data, "-out", filepath.Join(dir, "s"), "-chunk", "3", "-q"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "8 rows in 3 chunks") {
		t.Fatalf("output:\n%s", stdout.String())
	}
}

// TestBulkUsageErrors: missing required flags exit 2, not 1.
func TestBulkUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"extract", "-data", "x"}, &stdout, &stderr); code != 2 {
		t.Fatalf("extract without -out exit = %d, want 2", code)
	}
	if code := realMain([]string{"validate"}, &stdout, &stderr); code != 2 {
		t.Fatalf("validate without -store exit = %d, want 2", code)
	}
	data := filepath.Join(t.TempDir(), "d.txt")
	if err := os.WriteFile(data, []byte("1,2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := realMain([]string{"extract", "-data", data, "-out", filepath.Join(filepath.Dir(data), "s"), "-format", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad -format exit = %d, want 1", code)
	}
}
