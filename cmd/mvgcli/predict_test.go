package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
	"mvg/internal/serve/grpcapi"
	"mvg/internal/serve/httpapi"
	"mvg/internal/serve/servetest"
)

// startServer boots the shared test model behind both codecs on loopback
// listeners, returning the two addresses the predict subcommand dials.
func startServer(t *testing.T) (httpAddr, grpcAddr string) {
	t.Helper()
	model := servetest.Model(t)
	path := filepath.Join(t.TempDir(), "demo"+core.ModelExt)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	reg.Register("demo", model, path)
	engine, err := core.NewEngine(core.Config{Registry: reg, Window: time.Millisecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: httpapi.NewServer(engine)}
	go httpSrv.Serve(httpLn)

	grpcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	grpcSrv := grpcx.NewH2CServer("", grpcapi.NewServer(engine))
	go grpcSrv.Serve(grpcLn)

	t.Cleanup(func() {
		httpSrv.Close()
		grpcSrv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	return httpLn.Addr().String(), grpcLn.Addr().String()
}

// seriesFile writes one valid input series as comma-separated text.
func seriesFile(t *testing.T) string {
	t.Helper()
	series := servetest.Inputs(1, 7)[0]
	var b strings.Builder
	for i, v := range series {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	path := filepath.Join(t.TempDir(), "series.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPredictSubcommandTransportParity drives the same series through
// both transports and requires byte-identical output lines — the CLI leg
// of the cross-transport parity guarantee.
func TestPredictSubcommandTransportParity(t *testing.T) {
	httpAddr, grpcAddr := startServer(t)
	in := seriesFile(t)

	run := func(args ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 0 {
			t.Fatalf("mvgcli %v: exit %d, stderr: %s", args, code, errb.String())
		}
		return out.String()
	}

	httpOut := run("predict", "-addr", httpAddr, "-model", "demo", "-in", in)
	grpcOut := run("predict", "-grpc-addr", grpcAddr, "-model", "demo", "-in", in)
	if httpOut != grpcOut {
		t.Fatalf("transports disagree:\n  http: %s  grpc: %s", httpOut, grpcOut)
	}
	var line struct {
		Model string `json:"model"`
		Class *int   `json:"class"`
	}
	if err := json.Unmarshal([]byte(httpOut), &line); err != nil {
		t.Fatalf("output is not JSON: %v (%s)", err, httpOut)
	}
	if line.Model != "demo" || line.Class == nil {
		t.Fatalf("unexpected prediction line: %s", httpOut)
	}

	httpProba := run("predict", "-addr", httpAddr, "-model", "demo", "-in", in, "-proba")
	grpcProba := run("predict", "-grpc-addr", grpcAddr, "-model", "demo", "-in", in, "-proba")
	if httpProba != grpcProba {
		t.Fatalf("proba transports disagree:\n  http: %s  grpc: %s", httpProba, grpcProba)
	}
	var probaLine struct {
		Proba []float64 `json:"proba"`
	}
	if err := json.Unmarshal([]byte(httpProba), &probaLine); err != nil {
		t.Fatal(err)
	}
	if len(probaLine.Proba) != 2 {
		t.Fatalf("want 2 class probabilities, got %v", probaLine.Proba)
	}
}

// TestPredictSubcommandErrors covers usage and server-error exits on
// both transports.
func TestPredictSubcommandErrors(t *testing.T) {
	httpAddr, grpcAddr := startServer(t)
	in := seriesFile(t)

	for _, tc := range []struct {
		name string
		args []string
		code int
		want string
	}{
		{"no model", []string{"predict", "-addr", httpAddr, "-in", in}, 2, "-model"},
		{"both transports", []string{"predict", "-addr", httpAddr, "-grpc-addr", grpcAddr, "-model", "demo", "-in", in}, 2, "exactly one"},
		{"unknown model http", []string{"predict", "-addr", httpAddr, "-model", "nope", "-in", in}, 1, "404 Not Found"},
		{"unknown model grpc", []string{"predict", "-grpc-addr", grpcAddr, "-model", "nope", "-in", in}, 1, "nope"},
		{"dead backend", []string{"predict", "-grpc-addr", "127.0.0.1:1", "-model", "demo", "-in", in, "-timeout", "2s"}, 1, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := realMain(tc.args, &out, &errb); code != tc.code {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, tc.code, errb.String())
			}
			if tc.want != "" && !strings.Contains(errb.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", errb.String(), tc.want)
			}
		})
	}
}
