package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mvg"
	"mvg/internal/bulk"
)

// openSource resolves a dataset file into a chunked SeriesSource. format
// is "ucr", "ndjson", or "" (auto: .ndjson/.jsonl extensions select
// NDJSON, everything else UCR text). The caller closes the file.
func openSource(path, format string, chunk int) (mvg.SeriesSource, *os.File, error) {
	if format == "" {
		switch strings.ToLower(filepath.Ext(path)) {
		case ".ndjson", ".jsonl":
			format = "ndjson"
		default:
			format = "ucr"
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	switch format {
	case "ucr":
		return mvg.UCRSource(f, path, chunk), f, nil
	case "ndjson":
		return mvg.NDJSONSource(f, path, chunk), f, nil
	default:
		f.Close()
		return nil, nil, fmt.Errorf("unknown -format %q (want ucr or ndjson)", format)
	}
}

// runExtract is the bulk offline extraction subcommand: it streams a
// dataset file through the pipeline into a columnar feature store with
// bounded memory, resuming any interrupted prior run by default
// (docs/bulk.md).
func runExtract(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mvgcli extract", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataPath  = fs.String("data", "", "input dataset file (required)")
		format    = fs.String("format", "", "input format: ucr or ndjson (default: by extension)")
		outDir    = fs.String("out", "", "feature-store output directory (required)")
		chunk     = fs.Int("chunk", 1024, "rows per chunk (bounds memory and shard size)")
		dataset   = fs.String("dataset", "", "dataset name recorded in the manifest (default: data file stem)")
		scale     = fs.String("scale", "mvg", "representation: mvg, uvg or amvg")
		graphs    = fs.String("graphs", "both", "graphs per scale: both, vg or hvg")
		features  = fs.String("features", "all", "per-graph features: all or mpds")
		noDetrend = fs.Bool("no-detrend", false, "skip least-squares detrending")
		noZNorm   = fs.Bool("no-znormalize", false, "skip z-normalization")
		workers   = fs.Int("workers", 0, "extraction worker cap (0 = all cores)")
		noResume  = fs.Bool("no-resume", false, "rebuild from scratch instead of resuming a prior run")
		quiet     = fs.Bool("q", false, "suppress per-chunk progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dataPath == "" || *outDir == "" {
		fs.Usage()
		return 2
	}
	name := *dataset
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(*dataPath), filepath.Ext(*dataPath))
	}
	src, f, err := openSource(*dataPath, *format, *chunk)
	if err != nil {
		return fail(stderr, err)
	}
	defer f.Close()

	pipe, err := mvg.NewPipeline(mvg.Config{
		Scale: *scale, Graphs: *graphs, Features: *features,
		NoDetrend: *noDetrend, NoZNormalize: *noZNorm, Workers: *workers,
	})
	if err != nil {
		return fail(stderr, err)
	}
	defer pipe.Close()

	opts := mvg.StoreOptions{Dir: *outDir, Dataset: name, Resume: !*noResume}
	if !*quiet {
		opts.Progress = func(chunk, rows int, skipped bool) {
			verb := "extracted"
			if skipped {
				verb = "skipped (already durable)"
			}
			fmt.Fprintf(stderr, "mvgcli: chunk %d: %d rows %s\n", chunk, rows, verb)
		}
	}
	t0 := time.Now()
	res, err := pipe.ExtractToStore(context.Background(), src, opts)
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "extracted %s to %s: %d rows in %d chunks (%d extracted, %d resumed) in %.2fs\n",
		name, *outDir, res.Rows, res.Chunks, res.Extracted, res.Skipped, time.Since(t0).Seconds())
	return 0
}

// runValidate is the store validation subcommand: structural checks
// always run; with -data, a parity check re-extracts sampled rows per
// shard under the store's own recorded extraction config and asserts
// bit-identical features (docs/bulk.md#validation).
func runValidate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mvgcli validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		storeDir = fs.String("store", "", "feature-store directory (required)")
		dataPath = fs.String("data", "", "original dataset file; enables the re-extraction parity check")
		format   = fs.String("format", "", "input format: ucr or ndjson (default: by extension)")
		chunk    = fs.Int("chunk", 1024, "rows per chunk; must match the store's build")
		sample   = fs.Int("sample", 4, "rows re-extracted per shard by the parity check")
		workers  = fs.Int("workers", 0, "extraction worker cap for the parity check (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *storeDir == "" {
		fs.Usage()
		return 2
	}

	opts := bulk.ValidateOptions{Dir: *storeDir, SampleRows: *sample}
	if *dataPath != "" {
		// The parity extractor must be the store's own config, not flags:
		// the check asks "does this store match what its recorded
		// configuration extracts", so the manifest is the authority.
		store, err := mvg.OpenFeatureStore(*storeDir)
		if err != nil {
			return fail(stderr, err)
		}
		cfg, err := store.ExtractionConfig()
		if err != nil {
			return fail(stderr, err)
		}
		cfg.Workers = *workers
		pipe, err := mvg.NewPipeline(cfg)
		if err != nil {
			return fail(stderr, err)
		}
		defer pipe.Close()
		src, f, err := openSource(*dataPath, *format, *chunk)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		opts.Source = src
		opts.Extract = pipe.Extract
	}

	results, ok, err := bulk.Validate(context.Background(), opts)
	if err != nil {
		return fail(stderr, err)
	}
	for _, r := range results {
		status := "ok  "
		if !r.OK {
			status = "FAIL"
		}
		fmt.Fprintf(stdout, "%s %-8s %s\n", status, r.Name, r.Detail)
	}
	if !ok {
		fmt.Fprintln(stdout, "store is INVALID")
		return 1
	}
	fmt.Fprintln(stdout, "store is valid")
	return 0
}
