// Command mvgproxy is the fleet front door for a set of mvgserve
// replicas: one stateless proxy that consistent-hashes model names
// across the fleet, health-checks every replica through /healthz,
// retries idempotent predicts once when a shard is dead or draining,
// and sheds with 429 (RESOURCE_EXHAUSTED over gRPC) + Retry-After when
// no healthy replica remains. Both transports are accepted on one
// listener — JSON over HTTP/1 and gRPC over h2c — and both route by the
// same ring, so a model's traffic keeps sharing one replica's
// coalescer no matter which wire it arrives on. See
// docs/serving.md#fleet.
//
// Usage:
//
//	mvgproxy -replica 10.0.0.1:8080,10.0.0.1:8081 \
//	         -replica 10.0.0.2:8080,10.0.0.2:8081 -addr :9090
//	mvgproxy -replica localhost:8080 -health-interval 1s
//
// Each -replica names one mvgserve instance as "httpAddr[,grpcAddr]";
// the gRPC address may be omitted for HTTP-only replicas (gRPC calls
// then never route there).
//
// Proxy endpoints (answered locally, not forwarded):
//
//	GET /healthz   ready while >= 1 backend is; per-backend state in the body
//	GET /metrics   mvgproxy_* Prometheus metrics (requests, retries, sheds,
//	               backend_up) — distinct from the replicas' mvgserve_* families
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mvg/internal/grpcx"
	"mvg/internal/proxy"
)

func main() {
	var backends []proxy.Backend
	var (
		addr            = flag.String("addr", ":9090", "listen address (HTTP + gRPC/h2c on one port)")
		healthInterval  = flag.Duration("health-interval", 2*time.Second, "period between /healthz polls of each replica")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "maximum time to drain in-flight forwards on SIGTERM")
		readHeaderTo    = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
	)
	flag.Func("replica", `one mvgserve replica as "httpAddr[,grpcAddr]" (repeatable)`, func(v string) error {
		httpAddr, grpcAddr, _ := strings.Cut(v, ",")
		if httpAddr == "" {
			return fmt.Errorf("replica %q has no HTTP address", v)
		}
		backends = append(backends, proxy.Backend{HTTPAddr: httpAddr, GRPCAddr: grpcAddr})
		return nil
	})
	flag.Parse()
	logger := log.New(os.Stderr, "mvgproxy: ", log.LstdFlags)
	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "mvgproxy: at least one -replica is required")
		flag.Usage()
		os.Exit(2)
	}

	p, err := proxy.New(proxy.Config{
		Backends:       backends,
		HealthInterval: *healthInterval,
		RetryAfter:     *retryAfter,
		Logger:         logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	defer p.Close()

	// One h2c-capable listener carries both transports: HTTP/1 requests
	// take the JSON path, HTTP/2 requests with a grpc content-type take
	// the frame-forwarding path.
	srv := grpcx.NewH2CServer(*addr, p)
	srv.ReadHeaderTimeout = *readHeaderTo
	srv.IdleTimeout = 120 * time.Second

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s, %d replica(s)", *addr, len(backends))
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		logger.Fatal(err)
	case sig := <-sigc:
		logger.Printf("received %v, draining (timeout %v)", sig, *shutdownTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	logger.Printf("drained, bye")
}
