package mvg

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkPipelineReuse quantifies the tentpole win of the Pipeline API:
// a persistent pipeline (compiled extractor + worker pool whose scratch
// survives across calls) versus the per-call ExtractFeaturesBatch path
// (extractor rebuilt, scratch re-grown from nil every invocation), at the
// batch sizes a serving coalescer actually flushes. Workers is pinned to 1
// so allocs/op — the CI-gated metric — is identical on any machine; the
// comparison is about per-call construction overhead, not parallel
// speedup (BenchmarkExtractBatch covers that).
func BenchmarkPipelineReuse(b *testing.B) {
	const length = 512
	ctx := context.Background()
	for _, size := range []int{1, 8, 64} {
		series := make([][]float64, size)
		for i := range series {
			series[i] = randomSeries(length, int64(i+1))
		}
		b.Run(fmt.Sprintf("batch=%d/pipeline", size), func(b *testing.B) {
			p, err := NewPipeline(Config{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			// Warm the per-worker scratch so the timed region measures the
			// steady state a long-lived pipeline runs in.
			for i := 0; i < 2; i++ {
				if _, err := p.Extract(ctx, series); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Extract(ctx, series); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batch=%d/percall", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := extractOnce(series, Config{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
